// Correctness-checker tests.
//
// Two layers, matching the checker's compilation model:
//  * the direct-API tests below run in every build — the checker core is
//    always compiled, only the hook macros are conditional — and pin down
//    the detection logic (order-graph cycles, generation counters,
//    deduplication, nesting state machines);
//  * the OMPMCA_CHECK_ENABLED-gated tests seed real violations through the
//    public MRAPI / gomp surfaces and assert each report fires exactly
//    once, with the right resource keys, through the live hooks.
#include "check/check.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>

#include "gomp/runtime.hpp"
#include "mrapi/mutex.hpp"
#include "mrapi/node.hpp"
#include "obs/telemetry.hpp"

namespace ompmca::check {
namespace {

class CheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    reset();
    set_enabled(true);
    set_abort_on_violation(false);
  }
  void TearDown() override { reset(); }

  /// Occurrence count folded into the (at most one) report of @p kind.
  static std::uint64_t count_of(ViolationKind kind) {
    std::uint64_t n = 0;
    for (const Violation& v : violations()) {
      if (v.kind == kind) n += v.count;
    }
    return n;
  }

  static std::size_t reports_of(ViolationKind kind) {
    std::size_t n = 0;
    for (const Violation& v : violations()) {
      if (v.kind == kind) ++n;
    }
    return n;
  }
};

// --- direct-API: lock order ---------------------------------------------------

TEST_F(CheckTest, ConsistentOrderReportsNothing) {
  int a = 0;
  int b = 0;
  for (int i = 0; i < 3; ++i) {
    on_acquire(LockClass::kMrapiMutex, &a, 100, "t:a");
    on_acquire(LockClass::kMrapiMutex, &b, 200, "t:b");
    on_release(LockClass::kMrapiMutex, &b);
    on_release(LockClass::kMrapiMutex, &a);
  }
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(CheckTest, InversionReportedOnceWithBothKeys) {
  int a = 0;
  int b = 0;
  on_acquire(LockClass::kMrapiMutex, &a, 100, "t:a1");
  on_acquire(LockClass::kMrapiMutex, &b, 200, "t:b1");
  on_release(LockClass::kMrapiMutex, &b);
  on_release(LockClass::kMrapiMutex, &a);
  EXPECT_EQ(violation_count(), 0u);

  on_acquire(LockClass::kMrapiMutex, &b, 200, "t:b2");
  on_acquire(LockClass::kMrapiMutex, &a, 100, "t:a2");
  on_release(LockClass::kMrapiMutex, &a);
  on_release(LockClass::kMrapiMutex, &b);

  ASSERT_EQ(violation_count(), 1u);
  const Violation v = violations()[0];
  EXPECT_EQ(v.kind, ViolationKind::kLockOrderInversion);
  EXPECT_EQ(v.key, 100u);  // the acquisition that closed the cycle
  EXPECT_NE(v.message.find("key 200"), std::string::npos);
  EXPECT_NE(v.message.find("t:a1"), std::string::npos)
      << "report must carry the conflicting chain's acquisition site: "
      << v.message;

  // Re-running the inverted order must not produce a second report.
  on_acquire(LockClass::kMrapiMutex, &b, 200, "t:b3");
  on_acquire(LockClass::kMrapiMutex, &a, 100, "t:a3");
  on_release(LockClass::kMrapiMutex, &a);
  on_release(LockClass::kMrapiMutex, &b);
  EXPECT_EQ(violation_count(), 1u);
}

TEST_F(CheckTest, TransitiveCycleDetected) {
  int a = 0;
  int b = 0;
  int c = 0;
  // A -> B, B -> C established; C -> A closes a three-lock cycle.
  on_acquire(LockClass::kMrapiMutex, &a, 1, "t:a");
  on_acquire(LockClass::kMrapiMutex, &b, 2, "t:b");
  on_release(LockClass::kMrapiMutex, &b);
  on_release(LockClass::kMrapiMutex, &a);
  on_acquire(LockClass::kMrapiMutex, &b, 2, "t:b");
  on_acquire(LockClass::kMrapiMutex, &c, 3, "t:c");
  on_release(LockClass::kMrapiMutex, &c);
  on_release(LockClass::kMrapiMutex, &b);
  EXPECT_EQ(violation_count(), 0u);
  on_acquire(LockClass::kMrapiMutex, &c, 3, "t:c2");
  on_acquire(LockClass::kMrapiMutex, &a, 1, "t:a2");
  on_release(LockClass::kMrapiMutex, &a);
  on_release(LockClass::kMrapiMutex, &c);
  EXPECT_EQ(reports_of(ViolationKind::kLockOrderInversion), 1u);
}

TEST_F(CheckTest, SameKeyDifferentClassAreDistinctNodes) {
  int m = 0;
  int s = 0;
  // mutex key 7 then semaphore key 7, consistently — never an inversion.
  for (int i = 0; i < 2; ++i) {
    on_acquire(LockClass::kMrapiMutex, &m, 7, "t:m");
    on_acquire(LockClass::kMrapiSemaphore, &s, 7, "t:s");
    on_release(LockClass::kMrapiSemaphore, &s);
    on_release(LockClass::kMrapiMutex, &m);
  }
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(CheckTest, RecursiveReacquireIsNotAnEdge) {
  int a = 0;
  on_acquire(LockClass::kMrapiMutex, &a, 9, "t:a");
  on_acquire(LockClass::kMrapiMutex, &a, 9, "t:a-rec");
  on_release(LockClass::kMrapiMutex, &a);
  on_release(LockClass::kMrapiMutex, &a);
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_EQ(held_count(), 0u);
}

// --- direct-API: lifecycle ----------------------------------------------------

TEST_F(CheckTest, UseAfterDeleteCarriesKey) {
  int o = 0;
  on_create(LockClass::kMrapiMutex, 42, &o);
  on_delete(LockClass::kMrapiMutex, 42, &o);
  on_use_after_delete(LockClass::kMrapiMutex, &o, "t:ua");
  ASSERT_EQ(violation_count(), 1u);
  EXPECT_EQ(violations()[0].kind, ViolationKind::kUseAfterDelete);
  EXPECT_EQ(violations()[0].key, 42u);
}

TEST_F(CheckTest, DoubleDeleteOnlyForKeysThatExisted) {
  // Deleting a key that never existed is a plain bad argument, not a
  // lifecycle violation.
  on_delete_missing(LockClass::kMrapiMutex, 999, "t:never");
  EXPECT_EQ(violation_count(), 0u);

  int o = 0;
  on_create(LockClass::kMrapiMutex, 7, &o);
  on_delete(LockClass::kMrapiMutex, 7, &o);
  on_delete_missing(LockClass::kMrapiMutex, 7, "t:dd");
  ASSERT_EQ(violation_count(), 1u);
  EXPECT_EQ(violations()[0].kind, ViolationKind::kDoubleDelete);
  EXPECT_EQ(violations()[0].key, 7u);

  // A semaphore deletion of the same numeric key is unrelated.
  on_delete_missing(LockClass::kMrapiSemaphore, 7, "t:sem");
  EXPECT_EQ(violation_count(), 1u);
}

TEST_F(CheckTest, DoubleUnlockDeduplicates) {
  int o = 0;
  on_double_unlock(LockClass::kMrapiMutex, &o, "t:du");
  on_double_unlock(LockClass::kMrapiMutex, &o, "t:du");
  ASSERT_EQ(violation_count(), 1u);
  EXPECT_EQ(violations()[0].kind, ViolationKind::kDoubleUnlock);
  EXPECT_EQ(violations()[0].count, 2u);
}

TEST_F(CheckTest, NodeRetireWithHeldLocksFlagged) {
  int o = 0;
  on_acquire(LockClass::kMrapiMutex, &o, 5, "t:a");
  on_node_retire(3, "t:retire");
  ASSERT_EQ(reports_of(ViolationKind::kNodeRetireWithHeldLocks), 1u);
  for (const Violation& v : violations()) {
    if (v.kind == ViolationKind::kNodeRetireWithHeldLocks) {
      EXPECT_EQ(v.key, 3u);
      EXPECT_NE(v.message.find("key 5"), std::string::npos);
    }
  }
  on_release(LockClass::kMrapiMutex, &o);
  // Retiring with nothing held is clean and must not add a report.
  on_node_retire(4, "t:retire2");
  EXPECT_EQ(reports_of(ViolationKind::kNodeRetireWithHeldLocks), 1u);
}

TEST_F(CheckTest, HeldCountExcludesPoolPseudoLock) {
  int pool = 0;
  int m = 0;
  on_acquire(LockClass::kGompPool, &pool, 0, "t:pool");
  EXPECT_EQ(held_count(), 0u);
  on_acquire(LockClass::kMrapiMutex, &m, 1, "t:m");
  EXPECT_EQ(held_count(), 1u);
  on_release(LockClass::kMrapiMutex, &m);
  on_release(LockClass::kGompPool, &pool);
  EXPECT_EQ(held_count(), 0u);
}

// --- direct-API: gomp usage ---------------------------------------------------

TEST_F(CheckTest, BarrierNestingStateMachine) {
  int team = 0;
  on_barrier_usage(&team, "t:clean");
  EXPECT_EQ(violation_count(), 0u);

  on_region_enter(Region::kCritical, &team);
  on_barrier_usage(&team, "t:in-critical");
  on_region_exit(Region::kCritical, &team);
  EXPECT_EQ(reports_of(ViolationKind::kBarrierInsideCritical), 1u);

  on_region_enter(Region::kSingle, &team);
  on_barrier_usage(&team, "t:in-single");
  on_region_exit(Region::kSingle, &team);
  EXPECT_EQ(reports_of(ViolationKind::kBarrierInsideSingle), 1u);

  on_region_enter(Region::kWorkshare, &team);
  on_barrier_usage(&team, "t:in-ws");
  on_region_exit(Region::kWorkshare, &team);
  EXPECT_EQ(reports_of(ViolationKind::kBarrierInsideWorksharing), 1u);

  on_barrier_usage(&team, "t:clean-again");
  EXPECT_EQ(violation_count(), 3u);
}

TEST_F(CheckTest, NestedWorkshareSameTeamOnly) {
  int t1 = 0;
  int t2 = 0;
  // Nested parallelism: inner loop belongs to a *different* team — legal.
  on_region_enter(Region::kWorkshare, &t1);
  on_region_enter(Region::kWorkshare, &t2);
  on_region_exit(Region::kWorkshare, &t2);
  on_region_exit(Region::kWorkshare, &t1);
  EXPECT_EQ(violation_count(), 0u);

  on_region_enter(Region::kWorkshare, &t1);
  on_region_enter(Region::kWorkshare, &t1);
  on_region_exit(Region::kWorkshare, &t1);
  on_region_exit(Region::kWorkshare, &t1);
  EXPECT_EQ(reports_of(ViolationKind::kNestedWorksharing), 1u);
}

TEST_F(CheckTest, BarrierWhileHoldingLockNamesInnermost) {
  int a = 0;
  int b = 0;
  on_acquire(LockClass::kMrapiMutex, &a, 10, "t:a");
  on_acquire(LockClass::kGompUserLock, &b, 20, "t:b");
  on_barrier_held("t:barrier");
  on_release(LockClass::kGompUserLock, &b);
  on_release(LockClass::kMrapiMutex, &a);
  ASSERT_EQ(reports_of(ViolationKind::kBarrierWhileHoldingLock), 1u);
  const Violation v = violations()[0];
  EXPECT_EQ(v.lock_class, LockClass::kGompUserLock);
  EXPECT_EQ(v.key, 20u);
  on_barrier_held("t:barrier2");
  EXPECT_EQ(violation_count(), 1u);
}

// --- reporting ----------------------------------------------------------------

TEST_F(CheckTest, JsonSectionShape) {
  int o = 0;
  on_double_unlock(LockClass::kMrapiMutex, &o, "t:json");
  const std::string s = json_section();
  EXPECT_NE(s.find("\"violations_total\": 1"), std::string::npos) << s;
  EXPECT_NE(s.find("\"kind\": \"double_unlock\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"class\": \"mrapi_mutex\""), std::string::npos) << s;
  EXPECT_NE(s.find("\"count\": 1"), std::string::npos) << s;
}

TEST_F(CheckTest, ResetClearsEverything) {
  int o = 0;
  on_create(LockClass::kMrapiMutex, 1, &o);
  on_double_unlock(LockClass::kMrapiMutex, &o, "t:r");
  ASSERT_EQ(violation_count(), 1u);
  reset();
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_NE(json_section().find("\"violations\": []"), std::string::npos);
}

TEST_F(CheckTest, AbortOnViolationAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  set_abort_on_violation(true);
  int o = 0;
  EXPECT_DEATH(on_double_unlock(LockClass::kMrapiMutex, &o, "t:abort"),
               "OMPMCA_CHECK_ABORT");
  set_abort_on_violation(false);
}

#if !OMPMCA_CHECK_ENABLED

// --- OFF build: hooks are token-level no-ops ----------------------------------

TEST_F(CheckTest, HooksCompileToNothingWhenCheckOff) {
  int o = 0;
  (void)o;
  OMPMCA_CHECK_CREATE(LockClass::kMrapiMutex, 1, &o);
  OMPMCA_CHECK_DELETE(LockClass::kMrapiMutex, 1, &o);
  OMPMCA_CHECK_DELETE_MISSING(LockClass::kMrapiMutex, 1);
  OMPMCA_CHECK_USE_AFTER_DELETE(LockClass::kMrapiMutex, &o);
  OMPMCA_CHECK_ACQUIRE(LockClass::kMrapiMutex, &o, 1);
  OMPMCA_CHECK_RELEASE(LockClass::kMrapiMutex, &o);
  OMPMCA_CHECK_DOUBLE_UNLOCK(LockClass::kMrapiMutex, &o);
  OMPMCA_CHECK_UNLOCK_NOT_OWNER(LockClass::kMrapiMutex, &o);
  OMPMCA_CHECK_NODE_RETIRE(1);
  OMPMCA_CHECK_REGION_ENTER(Region::kSingle, &o);
  OMPMCA_CHECK_REGION_EXIT(Region::kSingle, &o);
  OMPMCA_CHECK_BARRIER_USAGE(&o);
  OMPMCA_CHECK_BARRIER_HELD();
  EXPECT_EQ(violation_count(), 0u);
  EXPECT_EQ(held_count(), 0u);
}

TEST_F(CheckTest, MrapiPathsRecordNothingWhenCheckOff) {
  mrapi::Mutex m;
  mrapi::LockKey k;
  ASSERT_EQ(m.lock(mrapi::kTimeoutInfinite, &k), Status::kSuccess);
  ASSERT_EQ(m.unlock(k), Status::kSuccess);
  EXPECT_EQ(m.unlock(k), Status::kMutexNotLocked);  // seeded double unlock
  EXPECT_EQ(violation_count(), 0u);
}

#else  // OMPMCA_CHECK_ENABLED

// --- ON build: seeded violations through the real surfaces --------------------

class CheckSeededTest : public CheckTest {
 protected:
  static mrapi::DomainId next_domain() {
    static std::atomic<mrapi::DomainId> next{0};
    return next.fetch_add(1) % mrapi::Limits::kMaxDomains;
  }
  void SetUp() override {
    mrapi::Database::instance().reset();
    CheckTest::SetUp();
  }
};

TEST_F(CheckSeededTest, MutexInversionViaMrapi) {
  auto node = mrapi::Node::initialize(next_domain(), 1);
  ASSERT_TRUE(node.has_value());
  auto a = node->mutex_create(100);
  auto b = node->mutex_create(101);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  mrapi::LockKey ka;
  mrapi::LockKey kb;
  ASSERT_EQ((*a)->lock(mrapi::kTimeoutInfinite, &ka), Status::kSuccess);
  ASSERT_EQ((*b)->lock(mrapi::kTimeoutInfinite, &kb), Status::kSuccess);
  ASSERT_EQ((*b)->unlock(kb), Status::kSuccess);
  ASSERT_EQ((*a)->unlock(ka), Status::kSuccess);
  EXPECT_EQ(violation_count(), 0u);

  ASSERT_EQ((*b)->lock(mrapi::kTimeoutInfinite, &kb), Status::kSuccess);
  ASSERT_EQ((*a)->lock(mrapi::kTimeoutInfinite, &ka), Status::kSuccess);
  ASSERT_EQ((*a)->unlock(ka), Status::kSuccess);
  ASSERT_EQ((*b)->unlock(kb), Status::kSuccess);

  ASSERT_EQ(reports_of(ViolationKind::kLockOrderInversion), 1u);
  const Violation v = violations()[0];
  EXPECT_EQ(v.lock_class, LockClass::kMrapiMutex);
  EXPECT_EQ(v.key, 100u);
  EXPECT_NE(v.message.find("mrapi_mutex key 101"), std::string::npos) << v.message;
  (void)node->finalize();
}

TEST_F(CheckSeededTest, DoubleUnlockViaMrapi) {
  auto node = mrapi::Node::initialize(next_domain(), 1);
  ASSERT_TRUE(node.has_value());
  auto m = node->mutex_create(55);
  ASSERT_TRUE(m.has_value());
  mrapi::LockKey k;
  ASSERT_EQ((*m)->lock(mrapi::kTimeoutInfinite, &k), Status::kSuccess);
  ASSERT_EQ((*m)->unlock(k), Status::kSuccess);
  EXPECT_EQ((*m)->unlock(k), Status::kMutexNotLocked);
  EXPECT_EQ((*m)->unlock(k), Status::kMutexNotLocked);
  ASSERT_EQ(reports_of(ViolationKind::kDoubleUnlock), 1u);
  for (const Violation& v : violations()) {
    if (v.kind == ViolationKind::kDoubleUnlock) {
      EXPECT_EQ(v.key, 55u);
      EXPECT_EQ(v.count, 2u);
      EXPECT_NE(v.site.find("mutex.cpp"), std::string::npos) << v.site;
    }
  }
  (void)node->finalize();
}

TEST_F(CheckSeededTest, UseAfterDeleteViaStaleHandle) {
  auto node = mrapi::Node::initialize(next_domain(), 1);
  ASSERT_TRUE(node.has_value());
  auto m = node->mutex_create(77);
  ASSERT_TRUE(m.has_value());
  std::shared_ptr<mrapi::Mutex> stale = *m;
  ASSERT_EQ(node->mutex_delete(77), Status::kSuccess);

  mrapi::LockKey k;
  EXPECT_EQ(stale->lock(mrapi::kTimeoutInfinite, &k), Status::kMutexIdInvalid);
  EXPECT_EQ(stale->lock(mrapi::kTimeoutInfinite, &k), Status::kMutexIdInvalid);
  ASSERT_EQ(reports_of(ViolationKind::kUseAfterDelete), 1u);
  for (const Violation& v : violations()) {
    if (v.kind == ViolationKind::kUseAfterDelete) {
      EXPECT_EQ(v.lock_class, LockClass::kMrapiMutex);
      EXPECT_EQ(v.key, 77u);
    }
  }
  (void)node->finalize();
}

TEST_F(CheckSeededTest, DeleteWhileHeldRefusedThenDoubleDeleteFlagged) {
  auto node = mrapi::Node::initialize(next_domain(), 1);
  ASSERT_TRUE(node.has_value());
  auto m = node->mutex_create(88);
  ASSERT_TRUE(m.has_value());
  mrapi::LockKey k;
  ASSERT_EQ((*m)->lock(mrapi::kTimeoutInfinite, &k), Status::kSuccess);
  EXPECT_EQ(node->mutex_delete(88), Status::kMutexLocked);
  EXPECT_EQ(violation_count(), 0u);  // refused delete is not a violation
  ASSERT_EQ((*m)->unlock(k), Status::kSuccess);
  ASSERT_EQ(node->mutex_delete(88), Status::kSuccess);
  EXPECT_EQ(node->mutex_delete(88), Status::kMutexIdInvalid);
  ASSERT_EQ(reports_of(ViolationKind::kDoubleDelete), 1u);
  for (const Violation& v : violations()) {
    if (v.kind == ViolationKind::kDoubleDelete) {
      EXPECT_EQ(v.key, 88u);
    }
  }
  (void)node->finalize();
}

TEST_F(CheckSeededTest, SemaphoreDeleteWhileHeldRefused) {
  auto node = mrapi::Node::initialize(next_domain(), 1);
  ASSERT_TRUE(node.has_value());
  mrapi::SemaphoreAttributes attrs;
  attrs.shared_lock_limit = 1;
  auto s = node->sem_create(60, attrs);
  ASSERT_TRUE(s.has_value());
  ASSERT_EQ((*s)->acquire(mrapi::kTimeoutInfinite), Status::kSuccess);
  EXPECT_EQ(node->sem_delete(60), Status::kSemLocked);
  ASSERT_EQ((*s)->release(), Status::kSuccess);
  EXPECT_EQ(node->sem_delete(60), Status::kSuccess);
  // Stale-handle operations after the successful delete fail cleanly.
  EXPECT_EQ((*s)->acquire(mrapi::kTimeoutInfinite), Status::kSemIdInvalid);
  EXPECT_EQ(reports_of(ViolationKind::kUseAfterDelete), 1u);
  (void)node->finalize();
}

TEST_F(CheckSeededTest, RwlockRetireBlocksStaleReaders) {
  auto node = mrapi::Node::initialize(next_domain(), 1);
  ASSERT_TRUE(node.has_value());
  auto r = node->rwlock_create(61);
  ASSERT_TRUE(r.has_value());
  std::shared_ptr<mrapi::Rwlock> stale = *r;
  ASSERT_EQ(node->rwlock_delete(61), Status::kSuccess);
  EXPECT_EQ(stale->lock_read(mrapi::kTimeoutInfinite), Status::kRwlIdInvalid);
  EXPECT_EQ(reports_of(ViolationKind::kUseAfterDelete), 1u);
  (void)node->finalize();
}

TEST_F(CheckSeededTest, NodeFinalizeWithHeldLockFlagged) {
  auto node = mrapi::Node::initialize(next_domain(), 9);
  ASSERT_TRUE(node.has_value());
  auto m = node->mutex_create(70);
  ASSERT_TRUE(m.has_value());
  mrapi::LockKey k;
  ASSERT_EQ((*m)->lock(mrapi::kTimeoutInfinite, &k), Status::kSuccess);
  (void)node->finalize();
  ASSERT_EQ(reports_of(ViolationKind::kNodeRetireWithHeldLocks), 1u);
  for (const Violation& v : violations()) {
    if (v.kind == ViolationKind::kNodeRetireWithHeldLocks) {
      EXPECT_EQ(v.key, 9u);
      EXPECT_NE(v.message.find("key 70"), std::string::npos) << v.message;
    }
  }
  ASSERT_EQ((*m)->unlock(k), Status::kSuccess);
}

gomp::RuntimeOptions one_thread_options() {
  gomp::RuntimeOptions opts;
  opts.backend = gomp::BackendKind::kNative;
  gomp::Icvs icvs;
  icvs.num_threads = 1;  // single-thread team: seeded nesting bugs cannot
                         // deadlock the test, the checks still fire
  opts.icvs = icvs;
  return opts;
}

TEST_F(CheckSeededTest, BarrierInsideCriticalViaRuntime) {
  gomp::Runtime rt(one_thread_options());
  rt.parallel([&](gomp::ParallelContext& ctx) {
    ctx.critical([&] { ctx.barrier(); });
  });
  EXPECT_EQ(reports_of(ViolationKind::kBarrierInsideCritical), 1u);
  // The physical-barrier check also sees the held critical mutex.
  EXPECT_EQ(reports_of(ViolationKind::kBarrierWhileHoldingLock), 1u);
}

TEST_F(CheckSeededTest, BarrierInsideSingleViaRuntime) {
  gomp::Runtime rt(one_thread_options());
  rt.parallel([&](gomp::ParallelContext& ctx) {
    ctx.single([&] { ctx.barrier(); }, /*nowait=*/true);
  });
  EXPECT_EQ(reports_of(ViolationKind::kBarrierInsideSingle), 1u);
}

TEST_F(CheckSeededTest, NestedWorksharingViaRuntime) {
  gomp::Runtime rt(one_thread_options());
  rt.parallel([&](gomp::ParallelContext& ctx) {
    ctx.for_loop(
        0, 2,
        [&](long, long) {
          ctx.for_loop(0, 2, [](long, long) {}, {}, /*nowait=*/true);
        },
        {}, /*nowait=*/true);
  });
  EXPECT_EQ(reports_of(ViolationKind::kNestedWorksharing), 1u);
}

TEST_F(CheckSeededTest, CleanRuntimeUsageReportsNothing) {
  gomp::Runtime rt(one_thread_options());
  rt.parallel([&](gomp::ParallelContext& ctx) {
    ctx.for_loop(0, 16, [](long, long) {}, {}, false);
    ctx.single([&] {}, false);
    ctx.critical([&] {});
    ctx.barrier();
  });
  EXPECT_EQ(violation_count(), 0u);
}

TEST_F(CheckSeededTest, ObsReportCarriesCheckSection) {
  int o = 0;
  on_double_unlock(LockClass::kMrapiMutex, &o, "t:obs");
  const std::string report = obs::Registry::instance().json("check-test");
  EXPECT_NE(report.find("\"check\""), std::string::npos);
  EXPECT_NE(report.find("double_unlock"), std::string::npos);
}

TEST_F(CheckSeededTest, RuntimeDisableSilencesHooks) {
  set_enabled(false);
  auto node = mrapi::Node::initialize(next_domain(), 1);
  ASSERT_TRUE(node.has_value());
  auto m = node->mutex_create(50);
  ASSERT_TRUE(m.has_value());
  mrapi::LockKey k;
  ASSERT_EQ((*m)->lock(mrapi::kTimeoutInfinite, &k), Status::kSuccess);
  ASSERT_EQ((*m)->unlock(k), Status::kSuccess);
  EXPECT_EQ((*m)->unlock(k), Status::kMutexNotLocked);
  EXPECT_EQ(violation_count(), 0u);
  set_enabled(true);
  (void)node->finalize();
}

#endif  // OMPMCA_CHECK_ENABLED

}  // namespace
}  // namespace ompmca::check
