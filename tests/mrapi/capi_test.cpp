// Validates that the paper's code fragments work almost verbatim against
// the C-flavoured shim.
#include "mrapi/capi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "mrapi/database.hpp"

namespace ompmca::mrapi::capi {
namespace {

// The shim tracks the calling node per *thread*; tests run on the main
// thread, so initialize once for the whole suite.
class CapiTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Database::instance().reset();
    mrapi_status_t status;
    mrapi_initialize(0, 1, &status);
    ASSERT_EQ(status, MRAPI_SUCCESS);
  }
};

TEST_F(CapiTest, InitializedReportsTrue) {
  EXPECT_TRUE(mrapi_initialized());
  mrapi_status_t status;
  mrapi_initialize(0, 2, &status);
  EXPECT_EQ(status, Status::kAlreadyInitialized);
}

TEST_F(CapiTest, ListingTwoThreadCreate) {
  // The paper's Listing 2 usage: create a worker thread bound to node 10.
  static std::atomic<int> ran{0};
  mrapi_thread_parameters_t params;
  params.start_routine = [](void* arg) -> void* {
    static_cast<std::atomic<int>*>(arg)->store(7);
    return nullptr;
  };
  params.arg = &ran;
  mrapi_status_t status;
  mrapi_thread_create(0, 10, &params, &status);
  ASSERT_EQ(status, MRAPI_SUCCESS);
  mrapi_thread_join(10, &status);
  EXPECT_EQ(status, MRAPI_SUCCESS);
  EXPECT_EQ(ran.load(), 7);
}

TEST_F(CapiTest, ListingTwoWrongDomainRejected) {
  mrapi_thread_parameters_t params;
  params.start_routine = [](void*) -> void* { return nullptr; };
  mrapi_status_t status;
  mrapi_thread_create(3, 11, &params, &status);
  EXPECT_EQ(status, Status::kDomainInvalid);
}

TEST_F(CapiTest, ListingThreeGompMalloc) {
  // The paper's gomp_malloc (Listing 3), reproduced exactly.
  auto gomp_malloc = [](std::size_t size) -> void* {
    mrapi_shmem_attributes_t shm_attr;
    shm_attr.use_malloc = MCA_TRUE;
    mrapi_status_t mrapi_status;
    constexpr mrapi_key_t SHMEM_DATA_KEY = 0x1000;
    mrapi_shmem_create_malloc(SHMEM_DATA_KEY, size, &shm_attr, &mrapi_status);
    if (mrapi_status == MRAPI_SUCCESS) {
      return shm_attr.mem_addr;
    }
    return nullptr;  // the paper calls gomp_fatal here
  };
  void* p = gomp_malloc(1024);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xEE, 1024);
  mrapi_status_t status;
  mrapi_shmem_delete(0x1000, &status);
  EXPECT_EQ(status, MRAPI_SUCCESS);
}

TEST_F(CapiTest, ListingFourMutexRoutines) {
  // gomp_mrapi_mutex_lock (Listing 4): create, lock with key, unlock.
  mrapi_status_t status;
  auto handle = mrapi_mutex_create(0x2000, &status);
  ASSERT_EQ(status, MRAPI_SUCCESS);
  ASSERT_NE(handle, nullptr);

  mrapi_key_t key = 0;
  mrapi_mutex_lock(handle, &key, MRAPI_TIMEOUT_INFINITE, &status);
  EXPECT_EQ(status, MRAPI_SUCCESS);
  EXPECT_EQ(key, 1u);
  mrapi_mutex_unlock(handle, &key, &status);
  EXPECT_EQ(status, MRAPI_SUCCESS);
}

TEST_F(CapiTest, MutexCreateIsGetOrCreate) {
  mrapi_status_t status;
  auto a = mrapi_mutex_create(0x2001, &status);
  ASSERT_EQ(status, MRAPI_SUCCESS);
  auto b = mrapi_mutex_create(0x2001, &status);
  ASSERT_EQ(status, MRAPI_SUCCESS);
  EXPECT_EQ(a.get(), b.get());
}

TEST_F(CapiTest, MetadataProcessorCount) {
  mrapi_status_t status;
  unsigned procs = mrapi_resources_num_processors(&status);
  EXPECT_EQ(status, MRAPI_SUCCESS);
  EXPECT_EQ(procs, 24u);  // T4240RDB default platform
}

TEST(CapiUninitialized, CallsFailWithNodeNotInit) {
  // A fresh thread has no calling node.
  std::thread t([] {
    EXPECT_FALSE(mrapi_initialized());
    mrapi_status_t status;
    mrapi_thread_parameters_t params;
    params.start_routine = [](void*) -> void* { return nullptr; };
    mrapi_thread_create(0, 50, &params, &status);
    EXPECT_EQ(status, MRAPI_ERR_NODE_NOTINIT);

    mrapi_shmem_attributes_t attrs;
    mrapi_shmem_create_malloc(0x3000, 64, &attrs, &status);
    EXPECT_EQ(status, MRAPI_ERR_NODE_NOTINIT);

    EXPECT_EQ(mrapi_mutex_create(0x3000, &status), nullptr);
    EXPECT_EQ(status, MRAPI_ERR_NODE_NOTINIT);

    EXPECT_EQ(mrapi_resources_num_processors(&status), 0u);
    EXPECT_EQ(status, MRAPI_ERR_NODE_NOTINIT);
  });
  t.join();
}

}  // namespace
}  // namespace ompmca::mrapi::capi
