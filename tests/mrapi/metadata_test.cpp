#include "mrapi/metadata.hpp"

#include <gtest/gtest.h>

#include "mrapi/node.hpp"
#include "platform/topology.hpp"

namespace ompmca::mrapi {
namespace {

class MetadataTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::instance().reset();
    Database::instance().configure_platform(platform::Topology::t4240rdb());
    auto n = Node::initialize(0, 1);
    ASSERT_TRUE(n.has_value());
    node_ = *n;
  }
  void TearDown() override {
    (void)node_.finalize();
    Database::instance().configure_platform(platform::Topology::t4240rdb());
  }
  Node node_;
};

TEST_F(MetadataTest, ProcessorsOnlineMatchesBoard) {
  auto md = node_.metadata();
  ASSERT_TRUE(md.has_value());
  // §5B.4: the runtime sizes its pool by this number — 24 on the T4240RDB.
  EXPECT_EQ(md->processors_online(), 24u);
  EXPECT_EQ(md->cores(), 12u);
}

TEST_F(MetadataTest, ResourceFilterQueries) {
  auto md = node_.metadata();
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->resources(platform::ResourceKind::kCluster).size(), 3u);
  EXPECT_EQ(md->resources(platform::ResourceKind::kHwThread).size(), 24u);
  EXPECT_EQ(md->resources(platform::ResourceKind::kCache).size(), 16u);
}

TEST_F(MetadataTest, NodesOnlineIsDynamic) {
  auto md = node_.metadata();
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->nodes_online(), 1u);
  auto other = Node::initialize(0, 2);
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(md->nodes_online(), 2u);
  (void)other->finalize();
  EXPECT_EQ(md->nodes_online(), 1u);
}

TEST_F(MetadataTest, RenderedTreeMentionsBoard) {
  auto md = node_.metadata();
  ASSERT_TRUE(md.has_value());
  std::string text = md->render();
  EXPECT_NE(text.find("T4240RDB"), std::string::npos);
}

TEST(MetadataPlatform, P4080DomainReportsEight) {
  Database::instance().reset();
  Database::instance().configure_platform(platform::Topology::p4080ds());
  auto n = Node::initialize(1, 1);
  ASSERT_TRUE(n.has_value());
  auto md = n->metadata();
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->processors_online(), 8u);
  (void)n->finalize();
  Database::instance().reset();
  Database::instance().configure_platform(platform::Topology::t4240rdb());
}

}  // namespace
}  // namespace ompmca::mrapi
