#include "mrapi/shmem.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "mrapi/node.hpp"

namespace ompmca::mrapi {
namespace {

class ShmemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::instance().reset();
    auto n = Node::initialize(0, 1);
    ASSERT_TRUE(n.has_value());
    node_ = *n;
    auto m = Node::initialize(0, 2);
    ASSERT_TRUE(m.has_value());
    other_ = *m;
  }
  void TearDown() override {
    (void)node_.finalize();
    (void)other_.finalize();
  }
  Node node_;
  Node other_;
};

TEST_F(ShmemTest, CreateAttachWriteReadAcrossNodes) {
  auto seg = node_.shmem_create(10, 4096);
  ASSERT_TRUE(seg.has_value());
  auto a = (*seg)->attach(node_.node_id());
  ASSERT_TRUE(a.has_value());

  // The second node looks the segment up by key — the MRAPI sharing model.
  auto found = other_.shmem_get(10);
  ASSERT_TRUE(found.has_value());
  auto b = (*found)->attach(other_.node_id());
  ASSERT_TRUE(b.has_value());

  EXPECT_EQ(*a, *b);  // same board memory
  std::memcpy(*a, "hello", 6);
  EXPECT_STREQ(static_cast<char*>(*b), "hello");
}

TEST_F(ShmemTest, DuplicateKeyRejected) {
  ASSERT_TRUE(node_.shmem_create(10, 64).has_value());
  EXPECT_EQ(node_.shmem_create(10, 64).status(), Status::kShmemExists);
}

TEST_F(ShmemTest, GetUnknownKey) {
  EXPECT_EQ(node_.shmem_get(123).status(), Status::kShmemIdInvalid);
}

TEST_F(ShmemTest, ZeroSizeRejected) {
  EXPECT_EQ(node_.shmem_create(10, 0).status(), Status::kInvalidArgument);
}

TEST_F(ShmemTest, DetachWithoutAttach) {
  auto seg = node_.shmem_create(10, 64);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ((*seg)->detach(node_.node_id()), Status::kShmemNotAttached);
}

TEST_F(ShmemTest, AttachCountsPerNode) {
  auto seg = node_.shmem_create(10, 64);
  ASSERT_TRUE(seg.has_value());
  ASSERT_TRUE((*seg)->attach(node_.node_id()).has_value());
  ASSERT_TRUE((*seg)->attach(node_.node_id()).has_value());
  EXPECT_EQ((*seg)->attach_count(), 2u);
  EXPECT_EQ((*seg)->detach(node_.node_id()), Status::kSuccess);
  EXPECT_TRUE((*seg)->attached(node_.node_id()));
  EXPECT_EQ((*seg)->detach(node_.node_id()), Status::kSuccess);
  EXPECT_FALSE((*seg)->attached(node_.node_id()));
}

TEST_F(ShmemTest, DeleteDeferredUntilLastDetach) {
  auto seg = node_.shmem_create(10, 64);
  ASSERT_TRUE(seg.has_value());
  auto addr = (*seg)->attach(node_.node_id());
  ASSERT_TRUE(addr.has_value());

  ASSERT_EQ(node_.shmem_delete(10), Status::kSuccess);
  EXPECT_TRUE((*seg)->delete_pending());
  // The segment is still usable by the attached node.
  std::memset(*addr, 0xAB, 64);
  // New attaches are refused.
  EXPECT_EQ((*seg)->attach(other_.node_id()).status(),
            Status::kShmemIdInvalid);
  // Key is free for reuse immediately.
  EXPECT_TRUE(node_.shmem_create(10, 64).has_value());
  // Storage reclaimed on last detach.
  EXPECT_EQ((*seg)->detach(node_.node_id()), Status::kSuccess);
  EXPECT_FALSE((*seg)->valid());
}

TEST_F(ShmemTest, DeleteUnknownKey) {
  EXPECT_EQ(node_.shmem_delete(77), Status::kShmemIdInvalid);
}

// --- the paper's use_malloc (heap mode) extension ---------------------------

TEST_F(ShmemTest, HeapModeViaUseMalloc) {
  ShmemAttributes attrs;
  attrs.use_malloc = true;
  auto seg = node_.shmem_create(11, 256, attrs);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ((*seg)->attributes().mode, ShmemMode::kHeap);
  auto addr = (*seg)->attach(node_.node_id());
  ASSERT_TRUE(addr.has_value());
  std::memset(*addr, 0, 256);
}

TEST_F(ShmemTest, HeapModeDoesNotConsumeArena) {
  auto before = [&] {
    auto d = Database::instance().find_domain(0);
    return (*d)->arena().used();
  };
  std::size_t used0 = before();
  ShmemAttributes attrs;
  attrs.use_malloc = true;
  auto seg = node_.shmem_create(12, 1 << 20, attrs);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ(before(), used0);  // heap segments bypass the system arena
}

TEST_F(ShmemTest, SystemModeConsumesArena) {
  auto d = Database::instance().find_domain(0);
  std::size_t used0 = (*d)->arena().used();
  auto seg = node_.shmem_create(13, 1 << 20);
  ASSERT_TRUE(seg.has_value());
  EXPECT_GE((*d)->arena().used(), used0 + (1u << 20));
  ASSERT_EQ(node_.shmem_delete(13), Status::kSuccess);
  EXPECT_EQ((*d)->arena().used(), used0);
}

TEST_F(ShmemTest, SystemModeExhaustionFallsBackToHeap) {
  // The default arena is 64 MiB; ask for more.  By default the create
  // degrades to the paper's heap mode instead of failing.
  auto seg = node_.shmem_create(14, 128u << 20);
  ASSERT_TRUE(seg.has_value());
  EXPECT_EQ((*seg)->attributes().mode, ShmemMode::kHeap);
  auto addr = (*seg)->attach(node_.node_id());
  ASSERT_TRUE(addr.has_value());
  ASSERT_EQ((*seg)->detach(node_.node_id()), Status::kSuccess);
  ASSERT_EQ(node_.shmem_delete(14), Status::kSuccess);
}

TEST_F(ShmemTest, SystemModeExhaustionFailsWhenFallbackDisabled) {
  ShmemAttributes attrs;
  attrs.allow_heap_fallback = false;
  auto seg = node_.shmem_create(14, 128u << 20, attrs);
  EXPECT_EQ(seg.status(), Status::kOutOfResources);
}

TEST_F(ShmemTest, CreateMallocConvenience) {
  auto addr = node_.shmem_create_malloc(15, 512);
  ASSERT_TRUE(addr.has_value());
  std::memset(*addr, 0x5A, 512);
  auto seg = node_.shmem_get(15);
  ASSERT_TRUE(seg.has_value());
  EXPECT_TRUE((*seg)->attached(node_.node_id()));
  EXPECT_EQ((*seg)->attributes().mode, ShmemMode::kHeap);
}

TEST_F(ShmemTest, ShmemLimitEnforced) {
  ShmemAttributes attrs;
  attrs.use_malloc = true;
  for (ResourceKey k = 1000; k < 1000 + Limits::kMaxShmems; ++k) {
    ASSERT_TRUE(node_.shmem_create(k, 64, attrs).has_value()) << k;
  }
  EXPECT_EQ(node_.shmem_create(9999, 64, attrs).status(),
            Status::kOutOfResources);
}

}  // namespace
}  // namespace ompmca::mrapi
