// Concurrency stress over the MRAPI database: the domain-wide registries
// must stay consistent under simultaneous node lifecycle and resource
// create/get/delete traffic — this is precisely the state the paper's
// runtime hammers at every fork/join.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mrapi/mrapi.hpp"

namespace ompmca::mrapi {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override { Database::instance().reset(); }
};

TEST_F(ConcurrencyTest, ParallelNodeInitFinalizeCycles) {
  const int kThreads = 8;
  const int kCycles = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      for (int c = 0; c < kCycles; ++c) {
        auto n = Node::initialize(0, static_cast<NodeId>(t));
        if (!n) {
          failures.fetch_add(1);
          continue;
        }
        if (!ok(n->finalize())) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto d = Database::instance().find_domain(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)->node_count(), 0u);
}

TEST_F(ConcurrencyTest, RacingInitSameNodeIdExactlyOneWins) {
  const int kThreads = 8;
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> winners{0};
    std::vector<std::thread> threads;
    std::vector<Node> nodes(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto n = Node::initialize(0, 42);
        if (n) {
          winners.fetch_add(1);
          nodes[static_cast<std::size_t>(t)] = *n;
        }
      });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(winners.load(), 1) << "round " << round;
    for (auto& n : nodes) {
      if (n.initialized()) (void)n.finalize();
    }
  }
}

TEST_F(ConcurrencyTest, ParallelShmemLifecyclesDistinctKeys) {
  auto host = Node::initialize(0, 0);
  ASSERT_TRUE(host.has_value());
  const int kThreads = 6;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 1; t <= kThreads; ++t) {
    threads.emplace_back([t, &failures] {
      auto me = Node::initialize(0, static_cast<NodeId>(t));
      if (!me) {
        failures.fetch_add(1);
        return;
      }
      ShmemAttributes attrs;
      attrs.use_malloc = true;
      for (int c = 0; c < 200; ++c) {
        ResourceKey key = static_cast<ResourceKey>(t * 1000 + (c % 8));
        auto seg = me->shmem_create(key, 256, attrs);
        if (!seg) {
          failures.fetch_add(1);
          continue;
        }
        auto addr = (*seg)->attach(me->node_id());
        if (!addr) failures.fetch_add(1);
        if (!ok((*seg)->detach(me->node_id()))) failures.fetch_add(1);
        if (!ok(me->shmem_delete(key))) failures.fetch_add(1);
      }
      (void)me->finalize();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  (void)host->finalize();
}

TEST_F(ConcurrencyTest, RacingMutexCreateSameKeyOneWinner) {
  auto host = Node::initialize(0, 0);
  ASSERT_TRUE(host.has_value());
  for (int round = 0; round < 40; ++round) {
    ResourceKey key = static_cast<ResourceKey>(7000 + round);
    std::atomic<int> created{0};
    std::atomic<int> existed{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 6; ++t) {
      threads.emplace_back([&] {
        auto m = host->mutex_create(key);
        if (m) {
          created.fetch_add(1);
        } else if (m.status() == Status::kMutexExists) {
          existed.fetch_add(1);
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(created.load(), 1);
    EXPECT_EQ(existed.load(), 5);
  }
  (void)host->finalize();
}

TEST_F(ConcurrencyTest, SharedShmemVisibleAcrossWorkerNodes) {
  auto host = Node::initialize(0, 0);
  ASSERT_TRUE(host.has_value());
  auto addr = host->shmem_create_malloc(500, sizeof(long) * 16);
  ASSERT_TRUE(addr.has_value());
  auto* slots = static_cast<long*>(*addr);
  for (int i = 0; i < 16; ++i) slots[i] = 0;

  // Listing-2 workers each fill their slot of the shared segment.
  for (int w = 0; w < 16; ++w) {
    ThreadParameters params;
    params.start_routine = [slots, w] {
      // Workers locate the segment by key, the MRAPI sharing model.
      auto me = Node::initialize(0, static_cast<NodeId>(100 + w));
      if (!me) return;
      auto seg = me->shmem_get(500);
      if (seg) {
        auto base = (*seg)->attach(me->node_id());
        if (base) {
          static_cast<long*>(*base)[w] = w + 1;
          (void)(*seg)->detach(me->node_id());
        }
      }
      (void)me->finalize();
    };
    ASSERT_EQ(host->thread_create(static_cast<NodeId>(50 + w),
                                  std::move(params)),
              Status::kSuccess);
  }
  for (int w = 0; w < 16; ++w) {
    (void)host->thread_join(static_cast<NodeId>(50 + w));
    (void)host->thread_finalize(static_cast<NodeId>(50 + w));
  }
  for (int i = 0; i < 16; ++i) EXPECT_EQ(slots[i], i + 1);
  (void)host->finalize();
}

TEST_F(ConcurrencyTest, DmaEngineHandlesConcurrentSubmitters) {
  auto host = Node::initialize(0, 0);
  ASSERT_TRUE(host.has_value());
  auto rmem = host->rmem_create(600, 1 << 16, RmemAccess::kDma);
  ASSERT_TRUE(rmem.has_value());

  const int kThreads = 4;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto me = Node::initialize(0, static_cast<NodeId>(t + 1));
      if (!me || !ok((*rmem)->attach(me->node_id(), RmemAccess::kDma))) {
        failures.fetch_add(1);
        return;
      }
      std::vector<std::uint8_t> out(512, static_cast<std::uint8_t>(t));
      std::vector<std::uint8_t> in(512);
      const std::size_t offset = static_cast<std::size_t>(t) * 1024;
      for (int c = 0; c < 100; ++c) {
        if (!ok((*rmem)->write(me->node_id(), offset, out.data(), 512)) ||
            !ok((*rmem)->read(me->node_id(), offset, in.data(), 512)) ||
            in != out) {
          failures.fetch_add(1);
        }
      }
      (void)(*rmem)->detach(me->node_id());
      (void)me->finalize();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  (void)host->finalize();
}

}  // namespace
}  // namespace ompmca::mrapi
