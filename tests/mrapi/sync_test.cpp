#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "mrapi/mutex.hpp"
#include "mrapi/node.hpp"
#include "mrapi/rwlock.hpp"
#include "mrapi/semaphore.hpp"

namespace ompmca::mrapi {
namespace {

// --- Mutex -------------------------------------------------------------------

TEST(Mutex, LockUnlock) {
  Mutex m;
  LockKey key;
  ASSERT_EQ(m.lock(kTimeoutInfinite, &key), Status::kSuccess);
  EXPECT_EQ(key.value, 1u);
  EXPECT_TRUE(m.locked());
  ASSERT_EQ(m.unlock(key), Status::kSuccess);
  EXPECT_FALSE(m.locked());
}

TEST(Mutex, TrylockWhenHeldFails) {
  Mutex m;
  LockKey key;
  ASSERT_EQ(m.lock(kTimeoutInfinite, &key), Status::kSuccess);
  std::thread t([&m] {
    LockKey k2;
    EXPECT_EQ(m.trylock(&k2), Status::kMutexLocked);
  });
  t.join();
  (void)m.unlock(key);
}

TEST(Mutex, NonRecursiveRelockReportsLocked) {
  Mutex m;
  LockKey key;
  ASSERT_EQ(m.lock(kTimeoutInfinite, &key), Status::kSuccess);
  LockKey key2;
  EXPECT_EQ(m.lock(kTimeoutInfinite, &key2), Status::kMutexLocked);
  (void)m.unlock(key);
}

TEST(Mutex, UnlockWithoutLock) {
  Mutex m;
  EXPECT_EQ(m.unlock(LockKey{1}), Status::kMutexNotLocked);
}

TEST(Mutex, UnlockFromWrongThreadRejected) {
  Mutex m;
  LockKey key;
  ASSERT_EQ(m.lock(kTimeoutInfinite, &key), Status::kSuccess);
  std::thread t([&m] {
    EXPECT_EQ(m.unlock(LockKey{1}), Status::kMutexKeyInvalid);
  });
  t.join();
  EXPECT_EQ(m.unlock(key), Status::kSuccess);
}

TEST(Mutex, TimeoutExpires) {
  Mutex m;
  LockKey key;
  ASSERT_EQ(m.lock(kTimeoutInfinite, &key), Status::kSuccess);
  std::thread t([&m] {
    LockKey k2;
    EXPECT_EQ(m.lock(20, &k2), Status::kTimeout);
  });
  t.join();
  (void)m.unlock(key);
}

TEST(Mutex, RecursiveLockKeysInnermostFirst) {
  Mutex m(MutexAttributes{.recursive = true});
  LockKey k1, k2, k3;
  ASSERT_EQ(m.lock(kTimeoutInfinite, &k1), Status::kSuccess);
  ASSERT_EQ(m.lock(kTimeoutInfinite, &k2), Status::kSuccess);
  ASSERT_EQ(m.lock(kTimeoutInfinite, &k3), Status::kSuccess);
  EXPECT_EQ(k1.value, 1u);
  EXPECT_EQ(k2.value, 2u);
  EXPECT_EQ(k3.value, 3u);
  // Releasing out of order is an error.
  EXPECT_EQ(m.unlock(k1), Status::kMutexKeyInvalid);
  EXPECT_EQ(m.unlock(k3), Status::kSuccess);
  EXPECT_EQ(m.unlock(k2), Status::kSuccess);
  EXPECT_EQ(m.unlock(k1), Status::kSuccess);
  EXPECT_FALSE(m.locked());
}

TEST(Mutex, MutualExclusionStress) {
  Mutex m;
  long counter = 0;
  const int kThreads = 8;
  const int kIters = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        LockKey key;
        ASSERT_EQ(m.lock(kTimeoutInfinite, &key), Status::kSuccess);
        ++counter;  // data race iff the mutex is broken
        ASSERT_EQ(m.unlock(key), Status::kSuccess);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

// --- Semaphore ----------------------------------------------------------------

TEST(Semaphore, CountsDownAndUp) {
  Semaphore s(SemaphoreAttributes{.shared_lock_limit = 2});
  EXPECT_EQ(s.available(), 2u);
  EXPECT_EQ(s.acquire(kTimeoutImmediate), Status::kSuccess);
  EXPECT_EQ(s.acquire(kTimeoutImmediate), Status::kSuccess);
  EXPECT_EQ(s.available(), 0u);
  EXPECT_EQ(s.try_acquire(), Status::kMutexLocked);
  EXPECT_EQ(s.release(), Status::kSuccess);
  EXPECT_EQ(s.available(), 1u);
}

TEST(Semaphore, ReleaseBeyondLimitRejected) {
  Semaphore s(SemaphoreAttributes{.shared_lock_limit = 1});
  EXPECT_EQ(s.release(), Status::kSemNotLocked);
}

TEST(Semaphore, TimeoutExpires) {
  Semaphore s(SemaphoreAttributes{.shared_lock_limit = 1});
  ASSERT_EQ(s.acquire(kTimeoutImmediate), Status::kSuccess);
  EXPECT_EQ(s.acquire(20), Status::kTimeout);
  (void)s.release();
}

TEST(Semaphore, BlocksUntilRelease) {
  Semaphore s(SemaphoreAttributes{.shared_lock_limit = 1});
  ASSERT_EQ(s.acquire(kTimeoutImmediate), Status::kSuccess);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    EXPECT_EQ(s.acquire(kTimeoutInfinite), Status::kSuccess);
    acquired.store(true);
  });
  EXPECT_FALSE(acquired.load());
  (void)s.release();
  t.join();
  EXPECT_TRUE(acquired.load());
}

TEST(Semaphore, BoundedConcurrencyInvariant) {
  Semaphore s(SemaphoreAttributes{.shared_lock_limit = 3});
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        ASSERT_EQ(s.acquire(kTimeoutInfinite), Status::kSuccess);
        int now = inside.fetch_add(1) + 1;
        int seen = max_inside.load();
        while (now > seen && !max_inside.compare_exchange_weak(seen, now)) {
        }
        inside.fetch_sub(1);
        ASSERT_EQ(s.release(), Status::kSuccess);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_LE(max_inside.load(), 3);
}

// --- Rwlock ---------------------------------------------------------------------

TEST(Rwlock, MultipleReaders) {
  Rwlock rw;
  ASSERT_EQ(rw.lock_read(kTimeoutImmediate), Status::kSuccess);
  ASSERT_EQ(rw.lock_read(kTimeoutImmediate), Status::kSuccess);
  EXPECT_EQ(rw.readers(), 2u);
  EXPECT_EQ(rw.unlock_read(), Status::kSuccess);
  EXPECT_EQ(rw.unlock_read(), Status::kSuccess);
}

TEST(Rwlock, WriterExcludesReaders) {
  Rwlock rw;
  ASSERT_EQ(rw.lock_write(kTimeoutImmediate), Status::kSuccess);
  EXPECT_EQ(rw.lock_read(kTimeoutImmediate), Status::kRwlLocked);
  EXPECT_EQ(rw.lock_write(kTimeoutImmediate), Status::kRwlLocked);
  EXPECT_EQ(rw.unlock_write(), Status::kSuccess);
  EXPECT_EQ(rw.lock_read(kTimeoutImmediate), Status::kSuccess);
  (void)rw.unlock_read();
}

TEST(Rwlock, UnlockWithoutLock) {
  Rwlock rw;
  EXPECT_EQ(rw.unlock_read(), Status::kRwlNotLocked);
  EXPECT_EQ(rw.unlock_write(), Status::kRwlNotLocked);
}

TEST(Rwlock, MaxReadersEnforced) {
  Rwlock rw(RwlockAttributes{.max_readers = 2});
  ASSERT_EQ(rw.lock_read(kTimeoutImmediate), Status::kSuccess);
  ASSERT_EQ(rw.lock_read(kTimeoutImmediate), Status::kSuccess);
  EXPECT_EQ(rw.lock_read(kTimeoutImmediate), Status::kRwlLocked);
  (void)rw.unlock_read();
  (void)rw.unlock_read();
}

TEST(Rwlock, WriterNotStarvedByReaderStream) {
  Rwlock rw;
  ASSERT_EQ(rw.lock_read(kTimeoutImmediate), Status::kSuccess);
  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    ASSERT_EQ(rw.lock_write(kTimeoutInfinite), Status::kSuccess);
    writer_done.store(true);
    (void)rw.unlock_write();
  });
  // Give the writer time to queue, then try to read: must be refused
  // (writer preference) while a writer waits.
  for (int i = 0; i < 100 && !writer_done.load(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    if (rw.lock_read(kTimeoutImmediate) == Status::kSuccess) {
      // Only possible once the writer has been served.
      EXPECT_TRUE(writer_done.load());
      (void)rw.unlock_read();
      break;
    }
  }
  (void)rw.unlock_read();
  writer.join();
  EXPECT_TRUE(writer_done.load());
}

TEST(Rwlock, ReadersWritersStress) {
  Rwlock rw;
  long value = 0;
  std::atomic<bool> mismatch{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {  // readers: value must always look consistent
      for (int i = 0; i < 500; ++i) {
        ASSERT_EQ(rw.lock_read(kTimeoutInfinite), Status::kSuccess);
        long a = value;
        long b = value;
        if (a != b) mismatch.store(true);
        ASSERT_EQ(rw.unlock_read(), Status::kSuccess);
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        ASSERT_EQ(rw.lock_write(kTimeoutInfinite), Status::kSuccess);
        ++value;
        ASSERT_EQ(rw.unlock_write(), Status::kSuccess);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(mismatch.load());
  EXPECT_EQ(value, 1000);
}

// --- registry-level behaviour -------------------------------------------------

TEST(SyncRegistry, MutexSharedByKeyAcrossNodes) {
  Database::instance().reset();
  auto a = Node::initialize(0, 1);
  auto b = Node::initialize(0, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  auto ma = a->mutex_create(50);
  ASSERT_TRUE(ma.has_value());
  auto mb = b->mutex_get(50);
  ASSERT_TRUE(mb.has_value());
  EXPECT_EQ(ma->get(), mb->get());  // same underlying object
  EXPECT_EQ(b->mutex_create(50).status(), Status::kMutexExists);
  (void)a->finalize();
  (void)b->finalize();
}

TEST(SyncRegistry, DeleteLockedMutexRefused) {
  Database::instance().reset();
  auto n = Node::initialize(0, 1);
  ASSERT_TRUE(n.has_value());
  auto m = n->mutex_create(51);
  ASSERT_TRUE(m.has_value());
  LockKey key;
  ASSERT_EQ((*m)->lock(kTimeoutInfinite, &key), Status::kSuccess);
  EXPECT_EQ(n->mutex_delete(51), Status::kMutexLocked);
  (void)(*m)->unlock(key);
  EXPECT_EQ(n->mutex_delete(51), Status::kSuccess);
  EXPECT_EQ(n->mutex_get(51).status(), Status::kMutexIdInvalid);
  (void)n->finalize();
}

TEST(SyncRegistry, SemaphoreZeroLimitRejected) {
  Database::instance().reset();
  auto n = Node::initialize(0, 1);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->sem_create(60, SemaphoreAttributes{.shared_lock_limit = 0})
                .status(),
            Status::kSemValueInvalid);
  (void)n->finalize();
}

TEST(SyncRegistry, RwlockDeleteWhileHeldRefused) {
  Database::instance().reset();
  auto n = Node::initialize(0, 1);
  ASSERT_TRUE(n.has_value());
  auto rw = n->rwlock_create(70);
  ASSERT_TRUE(rw.has_value());
  ASSERT_EQ((*rw)->lock_read(kTimeoutImmediate), Status::kSuccess);
  EXPECT_EQ(n->rwlock_delete(70), Status::kRwlLocked);
  (void)(*rw)->unlock_read();
  EXPECT_EQ(n->rwlock_delete(70), Status::kSuccess);
  (void)n->finalize();
}

}  // namespace
}  // namespace ompmca::mrapi
