#include "mrapi/node.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ompmca::mrapi {
namespace {

// Each test uses its own domain id so the process-global database never
// couples tests.
class NodeTest : public ::testing::Test {
 protected:
  static DomainId next_domain() {
    static std::atomic<DomainId> next{0};
    return next.fetch_add(1) % Limits::kMaxDomains;
  }
  void SetUp() override {
    Database::instance().reset();
    domain_ = next_domain();
  }
  DomainId domain_ = 0;
};

TEST_F(NodeTest, InitializeAndFinalize) {
  auto n = Node::initialize(domain_, 1);
  ASSERT_TRUE(n.has_value());
  EXPECT_TRUE(n->initialized());
  EXPECT_EQ(n->domain_id(), domain_);
  EXPECT_EQ(n->node_id(), 1u);
  EXPECT_EQ(n->finalize(), Status::kSuccess);
  EXPECT_FALSE(n->initialized());
}

TEST_F(NodeTest, DuplicateNodeIdRejected) {
  auto a = Node::initialize(domain_, 7);
  ASSERT_TRUE(a.has_value());
  auto b = Node::initialize(domain_, 7);
  EXPECT_EQ(b.status(), Status::kNodeExists);
  (void)a->finalize();
}

TEST_F(NodeTest, NodeIdReusableAfterFinalize) {
  auto a = Node::initialize(domain_, 7);
  ASSERT_TRUE(a.has_value());
  ASSERT_EQ(a->finalize(), Status::kSuccess);
  auto b = Node::initialize(domain_, 7);
  EXPECT_TRUE(b.has_value());
  (void)b->finalize();
}

TEST_F(NodeTest, OperationsBeforeInitFail) {
  Node n;
  EXPECT_FALSE(n.initialized());
  EXPECT_EQ(n.shmem_create(1, 64).status(), Status::kNodeNotInit);
  EXPECT_EQ(n.mutex_create(1).status(), Status::kNodeNotInit);
  EXPECT_EQ(n.metadata().status(), Status::kNodeNotInit);
  EXPECT_EQ(n.finalize(), Status::kNodeNotInit);
}

TEST_F(NodeTest, ManyNodesOneDomain) {
  std::vector<Node> nodes;
  for (NodeId id = 0; id < 32; ++id) {
    auto n = Node::initialize(domain_, id);
    ASSERT_TRUE(n.has_value()) << id;
    nodes.push_back(*n);
  }
  auto md = nodes[0].metadata();
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->nodes_online(), 32u);
  for (auto& n : nodes) EXPECT_EQ(n.finalize(), Status::kSuccess);
}

TEST_F(NodeTest, NodeLimitEnforced) {
  std::vector<Node> nodes;
  for (NodeId id = 0; id < Limits::kMaxNodesPerDomain; ++id) {
    auto n = Node::initialize(domain_, id);
    ASSERT_TRUE(n.has_value());
    nodes.push_back(*n);
  }
  auto overflow = Node::initialize(domain_, 9999);
  EXPECT_EQ(overflow.status(), Status::kOutOfResources);
  for (auto& n : nodes) (void)n.finalize();
}

// --- the paper's Listing-2 extension ---------------------------------------

TEST_F(NodeTest, ThreadCreateRunsRoutineAsNode) {
  auto host = Node::initialize(domain_, 0);
  ASSERT_TRUE(host.has_value());

  std::atomic<int> ran{0};
  ThreadParameters params;
  params.start_routine = [&ran] { ran.store(42); };
  ASSERT_EQ(host->thread_create(10, std::move(params)), Status::kSuccess);
  EXPECT_EQ(host->thread_join(10), Status::kSuccess);
  EXPECT_EQ(ran.load(), 42);

  // The worker node is registered until finalized.
  auto md = host->metadata();
  ASSERT_TRUE(md.has_value());
  EXPECT_EQ(md->nodes_online(), 2u);
  EXPECT_EQ(host->thread_finalize(10), Status::kSuccess);
  EXPECT_EQ(md->nodes_online(), 1u);
  (void)host->finalize();
}

TEST_F(NodeTest, ThreadCreateTeamOfWorkers) {
  auto host = Node::initialize(domain_, 0);
  ASSERT_TRUE(host.has_value());
  std::atomic<int> sum{0};
  const int kWorkers = 8;
  for (int i = 1; i <= kWorkers; ++i) {
    ThreadParameters params;
    params.start_routine = [&sum, i] { sum.fetch_add(i); };
    ASSERT_EQ(host->thread_create(static_cast<NodeId>(i), std::move(params)),
              Status::kSuccess);
  }
  for (int i = 1; i <= kWorkers; ++i) {
    EXPECT_EQ(host->thread_join(static_cast<NodeId>(i)), Status::kSuccess);
    EXPECT_EQ(host->thread_finalize(static_cast<NodeId>(i)), Status::kSuccess);
  }
  EXPECT_EQ(sum.load(), kWorkers * (kWorkers + 1) / 2);
  (void)host->finalize();
}

TEST_F(NodeTest, ThreadCreateNullRoutineRejected) {
  auto host = Node::initialize(domain_, 0);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->thread_create(1, ThreadParameters{}),
            Status::kInvalidArgument);
  (void)host->finalize();
}

TEST_F(NodeTest, ThreadJoinUnknownNode) {
  auto host = Node::initialize(domain_, 0);
  ASSERT_TRUE(host.has_value());
  EXPECT_EQ(host->thread_join(99), Status::kNodeInvalid);
  (void)host->finalize();
}

TEST_F(NodeTest, ThreadJoinIdempotent) {
  auto host = Node::initialize(domain_, 0);
  ASSERT_TRUE(host.has_value());
  ThreadParameters params;
  params.start_routine = [] {};
  ASSERT_EQ(host->thread_create(5, std::move(params)), Status::kSuccess);
  EXPECT_EQ(host->thread_join(5), Status::kSuccess);
  EXPECT_EQ(host->thread_join(5), Status::kSuccess);
  (void)host->thread_finalize(5);
  (void)host->finalize();
}

// Regression: join_worker used to read the record and call join() on it
// after dropping the registry lock, so two concurrent joiners could both
// join the same std::thread (UB) and a racing unregister could free the
// record mid-join.  The join is now claimed under the exclusive lock by
// moving the thread out of the record; every concurrent joiner must
// succeed (TSan/ASan builds would flag the old behaviour here).
TEST_F(NodeTest, ThreadJoinConcurrentJoinersSafe) {
  auto host = Node::initialize(domain_, 0);
  ASSERT_TRUE(host.has_value());
  for (int round = 0; round < 8; ++round) {
    ThreadParameters params;
    params.start_routine = [] {};
    ASSERT_EQ(host->thread_create(33, std::move(params)), Status::kSuccess);
    std::atomic<int> successes{0};
    std::vector<std::thread> joiners;
    joiners.reserve(4);
    for (int i = 0; i < 4; ++i) {
      joiners.emplace_back([&] {
        if (host->thread_join(33) == Status::kSuccess) successes.fetch_add(1);
      });
    }
    for (auto& t : joiners) t.join();
    EXPECT_EQ(successes.load(), 4);
    ASSERT_EQ(host->thread_finalize(33), Status::kSuccess);
  }
  (void)host->finalize();
}

TEST_F(NodeTest, WorkerCanUseDomainResources) {
  auto host = Node::initialize(domain_, 0);
  ASSERT_TRUE(host.has_value());
  auto mu = host->mutex_create(100);
  ASSERT_TRUE(mu.has_value());
  std::atomic<bool> locked_ok{false};
  ThreadParameters params;
  params.start_routine = [&] {
    LockKey key;
    if (ok((*mu)->lock(kTimeoutInfinite, &key)) &&
        ok((*mu)->unlock(key))) {
      locked_ok.store(true);
    }
  };
  ASSERT_EQ(host->thread_create(1, std::move(params)), Status::kSuccess);
  (void)host->thread_join(1);
  (void)host->thread_finalize(1);
  EXPECT_TRUE(locked_ok.load());
  (void)host->finalize();
}

TEST_F(NodeTest, DomainLimitEnforced) {
  // Domain ids are created lazily; exhaust the table.
  std::vector<Node> nodes;
  for (DomainId d = 0; d < Limits::kMaxDomains; ++d) {
    auto n = Node::initialize(d, 1);
    ASSERT_TRUE(n.has_value());
    nodes.push_back(*n);
  }
  auto overflow = Node::initialize(Limits::kMaxDomains + 10, 1);
  EXPECT_EQ(overflow.status(), Status::kDomainInvalid);
  for (auto& n : nodes) (void)n.finalize();
}

}  // namespace
}  // namespace ompmca::mrapi
