#include "mrapi/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace ompmca::mrapi {
namespace {

TEST(Arena, AllocateAndRelease) {
  SystemShmArena arena(1 << 20);
  auto p = arena.allocate(100);
  ASSERT_TRUE(p.has_value());
  std::memset(*p, 0xFF, 100);
  EXPECT_GE(arena.used(), 100u);
  EXPECT_EQ(arena.release(*p), Status::kSuccess);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(Arena, AllocationsAreCacheLineAligned) {
  SystemShmArena arena(1 << 20);
  for (int i = 0; i < 10; ++i) {
    auto p = arena.allocate(7);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(*p) % 64, 0u);
  }
}

TEST(Arena, ZeroBytesRejected) {
  SystemShmArena arena(4096);
  EXPECT_EQ(arena.allocate(0).status(), Status::kInvalidArgument);
}

TEST(Arena, ExhaustionReported) {
  SystemShmArena arena(4096);
  auto a = arena.allocate(4096);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(arena.allocate(64).status(), Status::kOutOfResources);
  (void)arena.release(*a);
  EXPECT_TRUE(arena.allocate(64).has_value());
}

TEST(Arena, ReleaseUnknownPointerRejected) {
  SystemShmArena arena(4096);
  int x;
  EXPECT_EQ(arena.release(&x), Status::kInvalidArgument);
}

// Regression: release() used to compute `p - base` before any range check,
// which is UB for foreign pointers and could wrap to a huge offset.  Every
// out-of-range pointer — below base, past the end, and wildly far away in
// both directions — must be rejected, and must not corrupt the arena.
TEST(Arena, ReleaseOutOfRangePointerRejected) {
  SystemShmArena arena(4096);
  auto p = arena.allocate(64);
  ASSERT_TRUE(p.has_value());
  auto* base = static_cast<std::byte*>(*p);

  const std::uintptr_t base_addr = reinterpret_cast<std::uintptr_t>(base);
  const std::uintptr_t probes[] = {
      base_addr - 64,             // just below the arena
      base_addr + 4096,           // one past the end
      base_addr + (1u << 20),     // far above
      base_addr - (1u << 20),     // far below
      0x1000,                     // unrelated low address
  };
  for (std::uintptr_t addr : probes) {
    EXPECT_EQ(arena.release(reinterpret_cast<void*>(addr)),
              Status::kInvalidArgument);
  }

  // The arena still works after the bad releases.
  EXPECT_EQ(arena.used(), 64u);
  EXPECT_EQ(arena.release(*p), Status::kSuccess);
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_TRUE(arena.allocate(4096).has_value());
}

// Regression for the O(1) used() counter: exact accounting through an
// interleaved alloc/release sequence (sizes round up to the cache line).
TEST(Arena, UsedCounterTracksAllocations) {
  SystemShmArena arena(1 << 16);
  EXPECT_EQ(arena.used(), 0u);
  auto a = arena.allocate(64);
  auto b = arena.allocate(100);  // rounds to 128
  auto c = arena.allocate(1);    // rounds to 64
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(arena.used(), 64u + 128u + 64u);
  ASSERT_EQ(arena.release(*b), Status::kSuccess);
  EXPECT_EQ(arena.used(), 64u + 64u);
  ASSERT_EQ(arena.release(*a), Status::kSuccess);
  ASSERT_EQ(arena.release(*c), Status::kSuccess);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(Arena, CoalescingAllowsFullReallocation) {
  SystemShmArena arena(64 * 10);
  std::vector<void*> ptrs;
  for (int i = 0; i < 10; ++i) {
    auto p = arena.allocate(64);
    ASSERT_TRUE(p.has_value());
    ptrs.push_back(*p);
  }
  EXPECT_EQ(arena.allocate(64).status(), Status::kOutOfResources);
  // Release in an interleaved order; coalescing must restore one big block.
  for (int i = 0; i < 10; i += 2) ASSERT_EQ(arena.release(ptrs[i]), Status::kSuccess);
  for (int i = 1; i < 10; i += 2) ASSERT_EQ(arena.release(ptrs[i]), Status::kSuccess);
  EXPECT_EQ(arena.free_blocks(), 1u);
  EXPECT_TRUE(arena.allocate(64 * 10).has_value());
}

TEST(Arena, FirstFitReusesGaps) {
  SystemShmArena arena(64 * 8);
  auto a = arena.allocate(64);
  auto b = arena.allocate(64 * 2);
  auto c = arena.allocate(64);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  ASSERT_EQ(arena.release(*b), Status::kSuccess);
  auto d = arena.allocate(64);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, *b);  // gap reused
  (void)arena.release(*a);
  (void)arena.release(*c);
  (void)arena.release(*d);
}

TEST(Arena, DistinctAllocationsDoNotOverlap) {
  SystemShmArena arena(1 << 16);
  auto a = arena.allocate(1000);
  auto b = arena.allocate(1000);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  auto pa = static_cast<std::byte*>(*a);
  auto pb = static_cast<std::byte*>(*b);
  EXPECT_TRUE(pa + 1000 <= pb || pb + 1000 <= pa);
}

// --- per-cluster sub-pools -----------------------------------------------------

TEST(ClusterArena, HintedAllocationStaysInItsPool) {
  SystemShmArena arena(64 * 30, 3);
  ASSERT_EQ(arena.num_pools(), 3u);
  for (unsigned cluster = 0; cluster < 3; ++cluster) {
    auto p = arena.allocate(64, cluster);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(arena.pool_of(*p), cluster);
    (void)arena.release(*p);
  }
}

TEST(ClusterArena, HintedAllocationSpillsWhenPoolFull) {
  // 3 pools x 640 bytes (10 cache lines each).
  SystemShmArena arena(64 * 30, 3);
  std::vector<void*> hogs;
  for (int i = 0; i < 10; ++i) {
    auto p = arena.allocate(64, 1);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(arena.pool_of(*p), 1u);
    hogs.push_back(*p);
  }
  // Pool 1 is exhausted: the next hinted allocation spills elsewhere
  // rather than failing.
  auto spill = arena.allocate(64, 1);
  ASSERT_TRUE(spill.has_value());
  EXPECT_NE(arena.pool_of(*spill), 1u);
  EXPECT_LT(arena.pool_of(*spill), 3u);
  (void)arena.release(*spill);
  for (void* p : hogs) ASSERT_EQ(arena.release(p), Status::kSuccess);
}

TEST(ClusterArena, ExhaustionOnlyWhenEveryPoolIsFull) {
  SystemShmArena arena(64 * 6, 3);  // 2 lines per pool
  std::vector<void*> all;
  for (int i = 0; i < 6; ++i) {
    auto p = arena.allocate(64);
    ASSERT_TRUE(p.has_value());
    all.push_back(*p);
  }
  EXPECT_EQ(arena.allocate(64).status(), Status::kOutOfResources);
  EXPECT_EQ(arena.allocate(64, 0).status(), Status::kOutOfResources);
  for (void* p : all) ASSERT_EQ(arena.release(p), Status::kSuccess);
  EXPECT_EQ(arena.used(), 0u);
}

TEST(ClusterArena, ReleaseFindsTheRightPool) {
  SystemShmArena arena(64 * 30, 3);
  auto a = arena.allocate(64, 0);
  auto b = arena.allocate(64, 2);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(arena.used(), 128u);
  EXPECT_EQ(arena.release(*b), Status::kSuccess);
  EXPECT_EQ(arena.release(*a), Status::kSuccess);
  EXPECT_EQ(arena.used(), 0u);
  int x;
  EXPECT_EQ(arena.pool_of(&x), arena.num_pools());
}

TEST(ClusterArena, OutOfRangeHintBehavesLikeNoHint) {
  SystemShmArena arena(64 * 30, 3);
  auto p = arena.allocate(64, 7);  // no such cluster: any pool acceptable
  ASSERT_TRUE(p.has_value());
  EXPECT_LT(arena.pool_of(*p), 3u);
  (void)arena.release(*p);
  auto q = arena.allocate(64, kAnyCluster);
  ASSERT_TRUE(q.has_value());
  (void)arena.release(*q);
}

TEST(ClusterArena, UnhintedAllocationsBalanceAcrossPools) {
  SystemShmArena arena(64 * 30, 3);
  // Load pool 0 heavily, then check hint-less allocations prefer the
  // lighter pools (least-loaded-first scan order).
  auto hog = arena.allocate(64 * 8, 0);
  ASSERT_TRUE(hog.has_value());
  auto a = arena.allocate(64);
  auto b = arena.allocate(64);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(arena.pool_of(*a), 0u);
  EXPECT_NE(arena.pool_of(*b), 0u);
  (void)arena.release(*a);
  (void)arena.release(*b);
  (void)arena.release(*hog);
}

TEST(Arena, ConcurrentAllocateRelease) {
  SystemShmArena arena(1 << 20);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&arena] {
      for (int i = 0; i < 500; ++i) {
        auto p = arena.allocate(128);
        ASSERT_TRUE(p.has_value());
        std::memset(*p, 0x77, 128);
        ASSERT_EQ(arena.release(*p), Status::kSuccess);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.free_blocks(), 1u);
}

}  // namespace
}  // namespace ompmca::mrapi
