#include "mrapi/rmem.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mrapi/node.hpp"

namespace ompmca::mrapi {
namespace {

class RmemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Database::instance().reset();
    auto n = Node::initialize(0, 1);
    ASSERT_TRUE(n.has_value());
    node_ = *n;
  }
  void TearDown() override { (void)node_.finalize(); }
  Node node_;
};

TEST_F(RmemTest, DirectReadWrite) {
  auto r = node_.rmem_create(1, 1024, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kSuccess);
  const char msg[] = "remote";
  ASSERT_EQ((*r)->write(node_.node_id(), 100, msg, sizeof(msg)),
            Status::kSuccess);
  char out[16] = {};
  ASSERT_EQ((*r)->read(node_.node_id(), 100, out, sizeof(msg)),
            Status::kSuccess);
  EXPECT_STREQ(out, "remote");
}

TEST_F(RmemTest, RequiresAttach) {
  auto r = node_.rmem_create(1, 64, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  char buf[8];
  EXPECT_EQ((*r)->read(node_.node_id(), 0, buf, 8),
            Status::kRmemNotAttached);
}

TEST_F(RmemTest, AccessTypeMustMatch) {
  auto r = node_.rmem_create(1, 64, RmemAccess::kDma);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kRmemConflict);
}

TEST_F(RmemTest, DoubleAttachRejected) {
  auto r = node_.rmem_create(1, 64, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kSuccess);
  EXPECT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kRmemExists);
}

TEST_F(RmemTest, BoundsChecked) {
  auto r = node_.rmem_create(1, 64, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kSuccess);
  char buf[128];
  EXPECT_EQ((*r)->read(node_.node_id(), 0, buf, 128),
            Status::kInvalidArgument);
  EXPECT_EQ((*r)->read(node_.node_id(), 60, buf, 8),
            Status::kInvalidArgument);
  EXPECT_EQ((*r)->read(node_.node_id(), 64, buf, 0), Status::kSuccess);
}

TEST_F(RmemTest, DmaBlockingTransfer) {
  auto r = node_.rmem_create(1, 4096, RmemAccess::kDma);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDma),
            Status::kSuccess);
  std::vector<std::uint8_t> out(4096, 0xCD);
  ASSERT_EQ((*r)->write(node_.node_id(), 0, out.data(), out.size()),
            Status::kSuccess);
  std::vector<std::uint8_t> in(4096, 0);
  ASSERT_EQ((*r)->read(node_.node_id(), 0, in.data(), in.size()),
            Status::kSuccess);
  EXPECT_EQ(in, out);
  EXPECT_GE(node_.dma()->transfers_completed(), 2u);
  EXPECT_GE(node_.dma()->bytes_transferred(), 8192u);
}

TEST_F(RmemTest, DmaAsyncRequestCompletes) {
  auto r = node_.rmem_create(1, 1 << 16, RmemAccess::kDma);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDma),
            Status::kSuccess);
  std::vector<int> src(1024);
  std::iota(src.begin(), src.end(), 0);
  auto wreq = (*r)->write_i(node_.node_id(), 0, src.data(),
                            src.size() * sizeof(int));
  ASSERT_TRUE(wreq.has_value());
  EXPECT_EQ((*wreq)->wait(), Status::kSuccess);
  EXPECT_TRUE((*wreq)->test());

  std::vector<int> dst(1024, -1);
  auto rreq =
      (*r)->read_i(node_.node_id(), 0, dst.data(), dst.size() * sizeof(int));
  ASSERT_TRUE(rreq.has_value());
  EXPECT_EQ((*rreq)->wait(1000), Status::kSuccess);
  EXPECT_EQ(dst, src);
}

TEST_F(RmemTest, AsyncOnDirectRejected) {
  auto r = node_.rmem_create(1, 64, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kSuccess);
  char buf[8];
  EXPECT_EQ((*r)->read_i(node_.node_id(), 0, buf, 8).status(),
            Status::kNotSupported);
}

TEST_F(RmemTest, StridedReadGathersRows) {
  // Remote holds a 4x8 byte matrix; read column-ish strides.
  auto r = node_.rmem_create(1, 32, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kSuccess);
  std::uint8_t matrix[32];
  for (int i = 0; i < 32; ++i) matrix[i] = static_cast<std::uint8_t>(i);
  ASSERT_EQ((*r)->write(node_.node_id(), 0, matrix, 32), Status::kSuccess);

  // Gather the first 2 bytes of each 8-byte row, packed.
  std::uint8_t out[8] = {};
  ASSERT_EQ((*r)->read_strided(node_.node_id(), 0, out,
                               /*bytes_per_stride=*/2, /*num_strides=*/4,
                               /*rmem_stride=*/8, /*local_stride=*/2),
            Status::kSuccess);
  const std::uint8_t expect[8] = {0, 1, 8, 9, 16, 17, 24, 25};
  EXPECT_EQ(std::memcmp(out, expect, 8), 0);
}

TEST_F(RmemTest, StridedWriteScattersRows) {
  auto r = node_.rmem_create(1, 32, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kSuccess);
  const std::uint8_t packed[4] = {0xA, 0xB, 0xC, 0xD};
  ASSERT_EQ((*r)->write_strided(node_.node_id(), 0, packed, 1, 4, 8, 1),
            Status::kSuccess);
  std::uint8_t out[32];
  ASSERT_EQ((*r)->read(node_.node_id(), 0, out, 32), Status::kSuccess);
  EXPECT_EQ(out[0], 0xA);
  EXPECT_EQ(out[8], 0xB);
  EXPECT_EQ(out[16], 0xC);
  EXPECT_EQ(out[24], 0xD);
}

TEST_F(RmemTest, StridedBoundsChecked) {
  auto r = node_.rmem_create(1, 32, RmemAccess::kDirect);
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ((*r)->attach(node_.node_id(), RmemAccess::kDirect),
            Status::kSuccess);
  std::uint8_t buf[64];
  // Last stride would end at offset 33.
  EXPECT_EQ((*r)->read_strided(node_.node_id(), 0, buf, 2, 5, 8, 2),
            Status::kInvalidArgument);
  // Stride smaller than the run length is malformed.
  EXPECT_EQ((*r)->read_strided(node_.node_id(), 0, buf, 4, 2, 2, 4),
            Status::kInvalidArgument);
}

TEST_F(RmemTest, RegistryKeyLifecycle) {
  ASSERT_TRUE(node_.rmem_create(9, 64, RmemAccess::kDirect).has_value());
  EXPECT_EQ(node_.rmem_create(9, 64, RmemAccess::kDirect).status(),
            Status::kRmemExists);
  EXPECT_TRUE(node_.rmem_get(9).has_value());
  EXPECT_EQ(node_.rmem_delete(9), Status::kSuccess);
  EXPECT_EQ(node_.rmem_get(9).status(), Status::kRmemIdInvalid);
}

}  // namespace
}  // namespace ompmca::mrapi
