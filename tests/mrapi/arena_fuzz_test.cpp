// Randomized arena torture: thousands of interleaved allocate/release
// operations checked against a shadow model — no overlaps, exact
// accounting, full coalescing at quiescence.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "common/align.hpp"
#include "common/rng.hpp"
#include "mrapi/arena.hpp"

namespace ompmca::mrapi {
namespace {

class ArenaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArenaFuzz, RandomAllocFreeAgainstShadowModel) {
  constexpr std::size_t kCapacity = 1 << 18;  // 256 KiB
  SystemShmArena arena(kCapacity);
  Xoshiro256 rng(GetParam());

  struct Block {
    std::byte* ptr;
    std::size_t size;
  };
  std::vector<Block> live;
  std::size_t shadow_used = 0;

  auto overlaps = [&](std::byte* p, std::size_t n) {
    for (const auto& b : live) {
      if (p < b.ptr + b.size && b.ptr < p + n) return true;
    }
    return false;
  };

  for (int op = 0; op < 4000; ++op) {
    bool do_alloc = live.empty() || rng.next_double() < 0.55;
    if (do_alloc) {
      std::size_t size = 1 + rng.next_below(2048);
      auto r = arena.allocate(size);
      std::size_t rounded = align_up(size, kCacheLineBytes);
      if (shadow_used + rounded > kCapacity) {
        // The arena may still succeed (fragmentation permitting) or fail;
        // but it must never succeed past capacity.
        if (r.has_value()) {
          ASSERT_LE(arena.used(), kCapacity);
          ASSERT_FALSE(
              overlaps(static_cast<std::byte*>(*r), rounded));
          live.push_back({static_cast<std::byte*>(*r), rounded});
          shadow_used += rounded;
        }
        continue;
      }
      if (!r.has_value()) {
        // Legal only under fragmentation; the free space must be split.
        ASSERT_GT(arena.free_blocks(), 1u)
            << "allocation failed with " << (kCapacity - shadow_used)
            << " contiguous-capacity bytes free";
        continue;
      }
      auto* p = static_cast<std::byte*>(*r);
      ASSERT_EQ(reinterpret_cast<std::uintptr_t>(p) % kCacheLineBytes, 0u);
      ASSERT_FALSE(overlaps(p, rounded)) << "overlapping allocation";
      // Touch every byte: must not fault and must not corrupt neighbours.
      std::memset(p, 0xD0 + (op % 16), size);
      live.push_back({p, rounded});
      shadow_used += rounded;
    } else {
      std::size_t victim = rng.next_below(live.size());
      ASSERT_EQ(arena.release(live[victim].ptr), Status::kSuccess);
      shadow_used -= live[victim].size;
      live[victim] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(arena.used(), shadow_used) << "accounting drifted at op " << op;
  }

  for (const auto& b : live) {
    ASSERT_EQ(arena.release(b.ptr), Status::kSuccess);
  }
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.free_blocks(), 1u) << "coalescing left fragments";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArenaFuzz,
                         ::testing::Values(1, 7, 42, 1234, 99991));

}  // namespace
}  // namespace ompmca::mrapi
