// NPB kernel verification: every kernel must pass its official NPB check
// (class S) under BOTH runtimes and at several team widths — this is the
// role the paper's validation pass plays for the runtime (§6A).
#include <gtest/gtest.h>

#include "npb/npb.hpp"

namespace ompmca::npb {
namespace {

struct KernelCase {
  const char* name;
  std::function<VerifyResult(gomp::Runtime&, Class, unsigned)> run;
};

std::vector<KernelCase> kernels() {
  return {
      {"EP",
       [](gomp::Runtime& rt, Class c, unsigned n) {
         return run_ep(rt, c, n).verify;
       }},
      {"CG",
       [](gomp::Runtime& rt, Class c, unsigned n) {
         return run_cg(rt, c, n).verify;
       }},
      {"IS",
       [](gomp::Runtime& rt, Class c, unsigned n) {
         return run_is(rt, c, n).verify;
       }},
      {"MG",
       [](gomp::Runtime& rt, Class c, unsigned n) {
         return run_mg(rt, c, n).verify;
       }},
      {"FT",
       [](gomp::Runtime& rt, Class c, unsigned n) {
         return run_ft(rt, c, n).verify;
       }},
  };
}

struct BackendThreads {
  gomp::BackendKind backend;
  unsigned nthreads;
};

class NpbClassS : public ::testing::TestWithParam<BackendThreads> {};

TEST_P(NpbClassS, AllKernelsVerify) {
  gomp::RuntimeOptions opts;
  opts.backend = GetParam().backend;
  gomp::Icvs icvs;
  icvs.num_threads = GetParam().nthreads;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  for (const auto& kernel : kernels()) {
    // EP class S is the slow one (16M pairs); keep it to one run per
    // backend at the widest team.
    if (std::string(kernel.name) == "EP" && GetParam().nthreads != 4)
      continue;
    VerifyResult v = kernel.run(rt, Class::S, 0);
    EXPECT_TRUE(v.verified) << kernel.name << ": " << v.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndWidths, NpbClassS,
    ::testing::Values(BackendThreads{gomp::BackendKind::kNative, 1},
                      BackendThreads{gomp::BackendKind::kNative, 3},
                      BackendThreads{gomp::BackendKind::kNative, 4},
                      BackendThreads{gomp::BackendKind::kMca, 4}),
    [](const ::testing::TestParamInfo<BackendThreads>& param_info) {
      return std::string(to_string(param_info.param.backend)) + "_t" +
             std::to_string(param_info.param.nthreads);
    });

TEST(NpbClassW, CgVerifies) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  auto r = run_cg(rt, Class::W);
  EXPECT_TRUE(r.verify.verified) << r.verify.detail;
}

TEST(NpbClassW, IsVerifies) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  auto r = run_is(rt, Class::W);
  EXPECT_TRUE(r.verify.verified) << r.verify.detail;
}

TEST(NpbClassW, MgVerifies) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  auto r = run_mg(rt, Class::W);
  EXPECT_TRUE(r.verify.verified) << r.verify.detail;
}

TEST(NpbClassW, EpVerifies) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  auto r = run_ep(rt, Class::W);
  EXPECT_TRUE(r.verify.verified) << r.verify.detail;
}

TEST(NpbClassW, FtVerifies) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  auto r = run_ft(rt, Class::W);
  EXPECT_TRUE(r.verify.verified) << r.verify.detail;
}

TEST(NpbResults, CgDeterministicAcrossRuns) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  auto a = run_cg(rt, Class::S);
  auto b = run_cg(rt, Class::S);
  EXPECT_DOUBLE_EQ(a.zeta, b.zeta);
  EXPECT_EQ(a.nnz, b.nnz);
}

TEST(NpbResults, EpCountsConserved) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  auto r = run_ep(rt, Class::S);
  double q_total = 0;
  for (double q : r.q) q_total += q;
  // Every accepted pair lands in exactly one annulus bin.
  EXPECT_DOUBLE_EQ(q_total, r.gaussian_count);
  // Acceptance rate of the Box-Muller rejection is pi/4.
  double pairs = static_cast<double>(1L << 24);
  EXPECT_NEAR(r.gaussian_count / pairs, 0.7854, 0.001);
}

}  // namespace
}  // namespace ompmca::npb
