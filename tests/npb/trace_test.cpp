// Cross-checks between the kernels' real execution meters and their simx
// timing skeletons: the trace must account for the same work the real code
// performs, otherwise the Figure-4 virtual times are fiction.
#include <gtest/gtest.h>

#include "npb/npb.hpp"
#include "simx/engine.hpp"

namespace ompmca::npb {
namespace {

platform::Work metered_total(gomp::Runtime& rt) {
  platform::Work total;
  for (const auto& m : rt.last_region_meters()) total += m;
  return total;
}

gomp::Runtime make_runtime(unsigned threads = 3) {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = threads;
  opts.icvs = icvs;
  return gomp::Runtime(opts);
}

TEST(NpbTrace, EpMetersMatchTraceExactly) {
  gomp::Runtime rt = make_runtime();
  (void)run_ep(rt, Class::S);
  platform::Work real = metered_total(rt);
  platform::Work trace = simx::total_work(trace_ep(Class::S));
  EXPECT_NEAR(real.flops / trace.flops, 1.0, 1e-9);
  EXPECT_NEAR(real.bytes / trace.bytes, 1.0, 1e-9);
}

TEST(NpbTrace, IsMetersMatchTrace) {
  gomp::Runtime rt = make_runtime();
  (void)run_is(rt, Class::S);
  // run_is uses several regions; its meters cover the final region only,
  // so compare per-iteration quantities via the trace's per-iteration work.
  platform::Work trace = simx::total_work(trace_is(Class::S));
  EXPECT_GT(trace.bytes, 0.0);
  EXPECT_GT(trace.int_ops, 0.0);
}

TEST(NpbTrace, CgMetersMatchTraceClosely) {
  gomp::Runtime rt = make_runtime();
  (void)run_cg(rt, Class::S);
  platform::Work real = metered_total(rt);
  platform::Work trace = simx::total_work(trace_cg(Class::S));
  EXPECT_NEAR(real.flops / trace.flops, 1.0, 0.05);
  EXPECT_NEAR(real.bytes / trace.bytes, 1.0, 0.05);
}

TEST(NpbTrace, TraceWorkScalesWithClass) {
  // Class A must be much bigger than class S in every kernel's trace.
  EXPECT_GT(simx::total_work(trace_ep(Class::A)).flops,
            10 * simx::total_work(trace_ep(Class::S)).flops);
  EXPECT_GT(simx::total_work(trace_cg(Class::A)).flops,
            5 * simx::total_work(trace_cg(Class::S)).flops);
  EXPECT_GT(simx::total_work(trace_is(Class::A)).bytes,
            50 * simx::total_work(trace_is(Class::S)).bytes);
  EXPECT_GT(simx::total_work(trace_mg(Class::A)).flops,
            100 * simx::total_work(trace_mg(Class::S)).flops);
  EXPECT_GT(simx::total_work(trace_ft(Class::A)).flops,
            10 * simx::total_work(trace_ft(Class::S)).flops);
}

struct TraceCase {
  const char* name;
  simx::Program (*trace)(Class);
  double min_speedup_24;
  double max_speedup_24;
};

class TraceShape : public ::testing::TestWithParam<TraceCase> {};

TEST_P(TraceShape, ClassASpeedupInPaperBand) {
  const auto& c = GetParam();
  platform::CostModel model(platform::Topology::t4240rdb(),
                            platform::ServiceCosts::native());
  simx::Program program = c.trace(Class::A);
  auto speedups = simx::Engine::speedup_series(model, program, {24});
  EXPECT_GE(speedups[0], c.min_speedup_24) << c.name;
  EXPECT_LE(speedups[0], c.max_speedup_24) << c.name;
}

TEST_P(TraceShape, McaCurveOverlapsNative) {
  const auto& c = GetParam();
  platform::CostModel native(platform::Topology::t4240rdb(),
                             platform::ServiceCosts::native());
  platform::CostModel mca(platform::Topology::t4240rdb(),
                          platform::ServiceCosts::mca());
  simx::Program program = c.trace(Class::A);
  for (unsigned n : {4u, 12u, 24u}) {
    simx::Engine en(&native, n), em(&mca, n);
    double tn = en.run(program).seconds;
    double tm = em.run(program).seconds;
    EXPECT_NEAR(tm / tn, 1.0, 0.08) << c.name << " at " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, TraceShape,
    ::testing::Values(TraceCase{"EP", trace_ep, 17.0, 26.0},
                      TraceCase{"CG", trace_cg, 9.0, 20.0},
                      TraceCase{"IS", trace_is, 6.0, 20.0},
                      TraceCase{"MG", trace_mg, 8.0, 20.0},
                      TraceCase{"FT", trace_ft, 8.0, 20.0}),
    [](const ::testing::TestParamInfo<TraceCase>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace ompmca::npb
