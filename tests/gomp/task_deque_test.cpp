// Chase-Lev deque unit tests: owner/thief interleavings must deliver every
// pushed element exactly once, across growth and under randomized stalls.
// Mirrors steal_test.cpp's approach for the loop scheduler's range-stealing:
// hammer the two-ended protocol from many threads and account for every
// element at the end.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <thread>
#include <vector>

#include "gomp/task_deque.hpp"

namespace ompmca::gomp {
namespace {

// The deque stores Task*; for protocol tests any unique pointer works.
// Encode an index as a pointer so we can tick a per-element counter.
Task* as_token(std::uintptr_t i) { return reinterpret_cast<Task*>(i + 1); }
std::uintptr_t from_token(Task* t) {
  return reinterpret_cast<std::uintptr_t>(t) - 1;
}

TEST(TaskDequeTest, OwnerPushPopLifo) {
  TaskDeque d(4);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.pop(), nullptr);
  for (std::uintptr_t i = 0; i < 10; ++i) d.push(as_token(i));
  EXPECT_EQ(d.size(), 10);
  for (std::uintptr_t i = 10; i-- > 0;) {
    Task* t = d.pop();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(from_token(t), i);
  }
  EXPECT_EQ(d.pop(), nullptr);
  EXPECT_TRUE(d.empty());
}

TEST(TaskDequeTest, StealTakesOldestFirst) {
  TaskDeque d(4);
  for (std::uintptr_t i = 0; i < 6; ++i) d.push(as_token(i));
  for (std::uintptr_t i = 0; i < 6; ++i) {
    Task* t = d.steal();
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(from_token(t), i);  // FIFO from the top end
  }
  EXPECT_EQ(d.steal(), nullptr);
}

TEST(TaskDequeTest, GrowthPreservesContents) {
  TaskDeque d(2);  // force several growths
  constexpr std::uintptr_t kN = 1000;
  for (std::uintptr_t i = 0; i < kN; ++i) d.push(as_token(i));
  std::vector<bool> seen(kN, false);
  // Mixed pops and steals across the grown buffer.
  for (std::uintptr_t i = 0; i < kN; ++i) {
    Task* t = (i % 2 == 0) ? d.pop() : d.steal();
    ASSERT_NE(t, nullptr);
    std::uintptr_t v = from_token(t);
    ASSERT_LT(v, kN);
    EXPECT_FALSE(seen[v]);
    seen[v] = true;
  }
  EXPECT_TRUE(d.empty());
}

// The core exactly-once property: one owner pushing and popping, several
// thieves stealing, randomized stalls to shake out interleavings.  Every
// token must be delivered to exactly one consumer.
TEST(TaskDequeTest, OwnerAndThievesDeliverExactlyOnce) {
  constexpr int kThieves = 3;
  constexpr std::uintptr_t kTokens = 20000;
  TaskDeque d(8);
  std::vector<std::atomic<std::uint32_t>> delivered(kTokens);
  for (auto& c : delivered) c.store(0, std::memory_order_relaxed);
  std::atomic<bool> done{false};
  std::atomic<std::uintptr_t> consumed{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int th = 0; th < kThieves; ++th) {
    thieves.emplace_back([&, th] {
      std::mt19937 rng(0xC0FFEEu + static_cast<unsigned>(th));
      while (!done.load(std::memory_order_acquire) || !d.empty()) {
        Task* t = d.steal();
        if (t != nullptr) {
          delivered[from_token(t)].fetch_add(1, std::memory_order_relaxed);
          consumed.fetch_add(1, std::memory_order_relaxed);
        }
        if ((rng() & 0x3F) == 0) std::this_thread::yield();
      }
    });
  }

  std::mt19937 rng(12345);
  std::uintptr_t next = 0;
  while (next < kTokens) {
    // Push a random burst, then pop a few back (the owner's LIFO end),
    // leaving the rest for thieves.
    std::uintptr_t burst = 1 + (rng() % 16);
    for (std::uintptr_t i = 0; i < burst && next < kTokens; ++i) {
      d.push(as_token(next++));
    }
    std::uintptr_t pops = rng() % 8;
    for (std::uintptr_t i = 0; i < pops; ++i) {
      Task* t = d.pop();
      if (t == nullptr) break;
      delivered[from_token(t)].fetch_add(1, std::memory_order_relaxed);
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
    if ((rng() & 0xFF) == 0) std::this_thread::yield();
  }
  // Owner drains what the thieves don't get to.
  for (;;) {
    Task* t = d.pop();
    if (t == nullptr) {
      if (consumed.load(std::memory_order_relaxed) >= kTokens) break;
      std::this_thread::yield();
      continue;
    }
    delivered[from_token(t)].fetch_add(1, std::memory_order_relaxed);
    consumed.fetch_add(1, std::memory_order_relaxed);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : thieves) th.join();

  for (std::uintptr_t i = 0; i < kTokens; ++i) {
    EXPECT_EQ(delivered[i].load(std::memory_order_relaxed), 1u)
        << "token " << i << " delivered " << delivered[i].load()
        << " times (must be exactly once)";
  }
}

// pop/steal race on the last element: exactly one side wins each round.
TEST(TaskDequeTest, LastElementRaceHasOneWinner) {
  constexpr int kRounds = 5000;
  TaskDeque d(4);
  for (int round = 0; round < kRounds; ++round) {
    d.push(as_token(static_cast<std::uintptr_t>(round)));
    std::atomic<int> wins{0};
    std::atomic<bool> go{false};
    std::thread thief([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      if (d.steal() != nullptr) wins.fetch_add(1);
    });
    go.store(true, std::memory_order_release);
    if (d.pop() != nullptr) wins.fetch_add(1);
    thief.join();
    ASSERT_EQ(wins.load(), 1) << "round " << round;
    ASSERT_TRUE(d.empty());
  }
}

}  // namespace
}  // namespace ompmca::gomp
