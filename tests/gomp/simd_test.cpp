// for_loop_simd (the `for simd` shape) and the OMP_PROC_BIND ICV.
#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "gomp/gomp.hpp"

namespace ompmca::gomp {
namespace {

Runtime make_runtime(unsigned threads) {
  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = threads;
  opts.icvs = icvs;
  return Runtime(opts);
}

struct SimdCase {
  long total;
  long width;
  unsigned threads;
};

class SimdLoopTest : public ::testing::TestWithParam<SimdCase> {};

TEST_P(SimdLoopTest, CoversRangeOnceWithAlignedChunks) {
  const auto c = GetParam();
  Runtime rt = make_runtime(c.threads);
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(c.total));
  for (auto& h : hits) h.store(0);
  std::atomic<bool> misaligned{false};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.for_loop_simd(
        0, c.total,
        [&](long lo, long hi) {
          // Every chunk starts on a vector boundary; every chunk except the
          // one containing the tail ends on one too.
          if (lo % c.width != 0) misaligned.store(true);
          if (hi != c.total && hi % c.width != 0) misaligned.store(true);
          for (long i = lo; i < hi; ++i) {
            hits[static_cast<std::size_t>(i)].fetch_add(1);
          }
        },
        c.width);
  });
  for (long i = 0; i < c.total; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << i;
  }
  EXPECT_FALSE(misaligned.load());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimdLoopTest,
    ::testing::Values(SimdCase{1024, 8, 4}, SimdCase{1000, 8, 4},
                      SimdCase{1000, 4, 3}, SimdCase{7, 8, 4},
                      SimdCase{64, 8, 24}, SimdCase{1, 16, 2},
                      SimdCase{4096, 16, 6}),
    [](const ::testing::TestParamInfo<SimdCase>& param_info) {
      const auto& c = param_info.param;
      // Built with appends: the `"lit" + std::to_string(...) + ...` chain
      // trips GCC 12's -Wrestrict false positive inside basic_string.
      std::string name = "n";
      name += std::to_string(c.total);
      name += "_w";
      name += std::to_string(c.width);
      name += "_t";
      name += std::to_string(c.threads);
      return name;
    });

TEST(SimdLoop, EmptyRangeIsBarrierOnly) {
  Runtime rt = make_runtime(4);
  std::atomic<int> calls{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.for_loop_simd(5, 5, [&](long, long) { calls.fetch_add(1); });
  });
  EXPECT_EQ(calls.load(), 0);
}

TEST(SimdLoop, SumsMatchSerial) {
  Runtime rt = make_runtime(6);
  const long n = 100000;
  std::vector<double> x(static_cast<std::size_t>(n));
  std::iota(x.begin(), x.end(), 0.0);
  double result = 0;
  rt.parallel([&](ParallelContext& ctx) {
    double local = 0;
    ctx.for_loop_simd(
        0, n,
        [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) local += x[static_cast<std::size_t>(i)];
          // An application would meter the vector fraction for the model:
          ctx.meter().flops += static_cast<double>(hi - lo);
          ctx.meter().vector_fraction = 1.0;
        },
        8, /*nowait=*/true);
    double total = ctx.reduce_sum(local);
    if (ctx.thread_num() == 0) result = total;
  });
  EXPECT_DOUBLE_EQ(result, static_cast<double>(n) * (n - 1) / 2.0);
}

class ProcBindEnv : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("OMP_PROC_BIND"); }
};

TEST_F(ProcBindEnv, DefaultIsSpread) {
  ::unsetenv("OMP_PROC_BIND");
  EXPECT_EQ(Icvs::from_env(4).proc_bind, ProcBind::kSpread);
}

TEST_F(ProcBindEnv, CloseParsed) {
  ::setenv("OMP_PROC_BIND", "close", 1);
  EXPECT_EQ(Icvs::from_env(4).proc_bind, ProcBind::kClose);
  ::setenv("OMP_PROC_BIND", "TRUE", 1);
  EXPECT_EQ(Icvs::from_env(4).proc_bind, ProcBind::kClose);
}

TEST_F(ProcBindEnv, SpreadParsed) {
  ::setenv("OMP_PROC_BIND", "spread", 1);
  EXPECT_EQ(Icvs::from_env(4).proc_bind, ProcBind::kSpread);
}

}  // namespace
}  // namespace ompmca::gomp
