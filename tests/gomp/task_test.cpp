#include "gomp/task.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "gomp/runtime.hpp"

namespace ompmca::gomp {
namespace {

// --- TaskSystem unit level --------------------------------------------------

TEST(TaskSystem, RunOneExecutesFifo) {
  TaskSystem ts;
  std::vector<int> order;
  Task* current = nullptr;
  ts.spawn(nullptr, nullptr, [&] { order.push_back(1); });
  ts.spawn(nullptr, nullptr, [&] { order.push_back(2); });
  EXPECT_EQ(ts.queued(), 2u);
  EXPECT_TRUE(ts.run_one(&current));
  EXPECT_TRUE(ts.run_one(&current));
  EXPECT_FALSE(ts.run_one(&current));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TaskSystem, DrainRunsTransitiveSpawns) {
  TaskSystem ts;
  std::atomic<int> count{0};
  Task* current = nullptr;
  ts.spawn(nullptr, nullptr, [&] {
    count.fetch_add(1);
    ts.spawn(current, nullptr, [&] {
      count.fetch_add(1);
      ts.spawn(current, nullptr, [&] { count.fetch_add(1); });
    });
  });
  ts.drain(&current);
  EXPECT_EQ(count.load(), 3);
  EXPECT_EQ(ts.queued(), 0u);
}

// --- runtime integration ------------------------------------------------------

class TaskRuntimeTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  Runtime make_runtime(unsigned threads = 4) {
    RuntimeOptions opts;
    opts.backend = GetParam();
    Icvs icvs;
    icvs.num_threads = threads;
    opts.icvs = icvs;
    return Runtime(opts);
  }
};

TEST_P(TaskRuntimeTest, TasksRunByRegionEnd) {
  Runtime rt = make_runtime();
  std::atomic<int> done{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < 100; ++i) {
        ctx.task([&done] { done.fetch_add(1); });
      }
    }, /*nowait=*/true);
  });
  // The implicit region barrier must have executed every task.
  EXPECT_EQ(done.load(), 100);
}

TEST_P(TaskRuntimeTest, TaskwaitWaitsForChildren) {
  Runtime rt = make_runtime();
  std::atomic<int> children_done{0};
  std::atomic<bool> taskwait_early{false};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < 16; ++i) {
        ctx.task([&] { children_done.fetch_add(1); });
      }
      ctx.taskwait();
      if (children_done.load() != 16) taskwait_early.store(true);
    });
  });
  EXPECT_FALSE(taskwait_early.load());
  EXPECT_EQ(children_done.load(), 16);
}

TEST_P(TaskRuntimeTest, TaskwaitOnlyWaitsForDirectChildren) {
  Runtime rt = make_runtime();
  std::atomic<int> grandchildren{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      ctx.task([&] {
        // This child spawns its own child; the parent's taskwait must not
        // require the grandchild (only direct children).
        Runtime::current()->task([&] { grandchildren.fetch_add(1); });
      });
      ctx.taskwait();
    });
  });
  // Region end still runs everything.
  EXPECT_EQ(grandchildren.load(), 1);
}

TEST_P(TaskRuntimeTest, TaskgroupWaitsForTagged) {
  Runtime rt = make_runtime();
  std::atomic<int> in_group{0};
  std::atomic<bool> early{false};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      ctx.taskgroup([&] {
        for (int i = 0; i < 32; ++i) {
          ctx.task([&] { in_group.fetch_add(1); });
        }
      });
      if (in_group.load() != 32) early.store(true);
    });
  });
  EXPECT_FALSE(early.load());
}

TEST_P(TaskRuntimeTest, RecursiveFibonacciTasks) {
  Runtime rt = make_runtime();
  // Each invocation uses the *executing* thread's context, so spawns and
  // waits are attributed to the task actually running them.
  std::function<long(int)> fib = [&](int n) -> long {
    ParallelContext& ctx = *Runtime::current();
    if (n < 2) return n;
    long a = 0, b = 0;
    ctx.task([&fib, &a, n] { a = fib(n - 1); });
    b = fib(n - 2);
    ctx.taskwait();
    return a + b;
  };
  long result = 0;
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] { result = fib(12); });
  });
  EXPECT_EQ(result, 144);
}

TEST_P(TaskRuntimeTest, TasksExecuteOnMultipleThreads) {
  Runtime rt = make_runtime(4);
  std::mutex mu;
  std::set<unsigned> executors;
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < 200; ++i) {
        ctx.task([&] {
          ParallelContext* me = Runtime::current();
          std::lock_guard lk(mu);
          executors.insert(me->thread_num());
        });
      }
    }, /*nowait=*/true);
    // Everyone else falls through to the implicit barrier and helps.
  });
  // On an oversubscribed host we cannot guarantee all 4 participate, but
  // the single's spawner cannot have done everything alone while 3 threads
  // drained the queue at the barrier — expect at least 2 executors
  // overwhelmingly often.  (Property kept loose to stay deterministic.)
  EXPECT_GE(executors.size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, TaskRuntimeTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kMca),
                         [](const ::testing::TestParamInfo<BackendKind>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace ompmca::gomp
