#include "gomp/task.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "gomp/runtime.hpp"

namespace ompmca::gomp {
namespace {

// --- TaskSystem unit level --------------------------------------------------

TEST(TaskSystem, OwnerRunsNewestFirst) {
  // The owner's end of a work-stealing deque is LIFO: the most recently
  // spawned task runs first (depth-first, cache-warm); thieves take the
  // oldest.  This is the classic Cilk-style execution order.
  TaskSystem ts;
  std::vector<int> order;
  Task* current = nullptr;
  ts.spawn(0, nullptr, [&] { order.push_back(1); });
  ts.spawn(0, nullptr, [&] { order.push_back(2); });
  EXPECT_EQ(ts.queued(), 2u);
  EXPECT_TRUE(ts.run_one(0, &current));
  EXPECT_TRUE(ts.run_one(0, &current));
  EXPECT_FALSE(ts.run_one(0, &current));
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

TEST(TaskSystem, DrainRunsTransitiveSpawns) {
  TaskSystem ts;
  std::atomic<int> count{0};
  Task* current = nullptr;
  ts.spawn(0, nullptr, [&] {
    count.fetch_add(1);
    ts.spawn(0, current, [&] {
      count.fetch_add(1);
      ts.spawn(0, current, [&] { count.fetch_add(1); });
    });
  });
  ts.drain(0, &current);
  EXPECT_EQ(count.load(), 3);
  EXPECT_EQ(ts.queued(), 0u);
}

TEST(TaskSystem, DependOutThenInOrders) {
  // in-tasks must observe the preceding out-task's write, regardless of
  // the deque's LIFO preference for the newest spawn.
  TaskSystem ts;
  Task* current = nullptr;
  int cell = 0;
  std::vector<int> reads;
  const void* addr = &cell;
  ts.spawn_depend(0, nullptr, [&] { cell = 42; }, nullptr, 0, &addr, 1);
  ts.spawn_depend(0, nullptr, [&] { reads.push_back(cell); }, &addr, 1,
                  nullptr, 0);
  ts.spawn_depend(0, nullptr, [&] { reads.push_back(cell); }, &addr, 1,
                  nullptr, 0);
  ts.drain(0, &current);
  EXPECT_EQ(reads, (std::vector<int>{42, 42}));
}

TEST(TaskSystem, DependChainRunsInSpawnOrder) {
  TaskSystem ts;
  Task* current = nullptr;
  int cell = 0;
  std::vector<int> order;
  const void* addr = &cell;
  for (int i = 0; i < 8; ++i) {
    ts.spawn_depend(0, nullptr, [&order, i] { order.push_back(i); }, nullptr,
                    0, &addr, 1);
  }
  ts.drain(0, &current);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(TaskSystem, DependWritersWaitForReaders) {
  // out after in: the second writer must wait for every reader of the
  // address, not just the previous writer.
  TaskSystem ts;
  Task* current = nullptr;
  int cell = 0;
  std::atomic<int> readers_done{0};
  std::atomic<int> readers_at_write{-1};
  const void* addr = &cell;
  ts.spawn_depend(0, nullptr, [&] { cell = 1; }, nullptr, 0, &addr, 1);
  for (int i = 0; i < 4; ++i) {
    ts.spawn_depend(0, nullptr, [&] { readers_done.fetch_add(1); }, &addr, 1,
                    nullptr, 0);
  }
  ts.spawn_depend(0, nullptr,
                  [&] { readers_at_write.store(readers_done.load()); },
                  nullptr, 0, &addr, 1);
  ts.drain(0, &current);
  EXPECT_EQ(readers_at_write.load(), 4);
}

TEST(TaskSystem, DependOnDisjointAddressesDoesNotSerialise) {
  // Sanity: tasks on unrelated addresses are all immediately runnable
  // (queued on the deque rather than parked in the dependence graph).
  TaskSystem ts;
  Task* current = nullptr;
  int a = 0, b = 0;
  const void* pa = &a;
  const void* pb = &b;
  ts.spawn_depend(0, nullptr, [&] { a = 1; }, nullptr, 0, &pa, 1);
  ts.spawn_depend(0, nullptr, [&] { b = 1; }, nullptr, 0, &pb, 1);
  EXPECT_EQ(ts.queued(), 2u);
  ts.drain(0, &current);
  EXPECT_EQ(a + b, 2);
}

TEST(TaskSystem, TaskloopCoversRangeExactlyOnce) {
  TaskSystem ts;
  Task* implicit = ts.make_implicit();
  Task* current = implicit;
  std::vector<int> hits(1000, 0);
  ts.taskloop(0, &current, 0, 1000, /*grain=*/64, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  ts.drain(0, &current);
  implicit->release();
}

TEST(TaskSystem, TaskloopAdaptiveGrainCoversOddRange) {
  TaskSystem ts;
  Task* implicit = ts.make_implicit();
  Task* current = implicit;
  std::vector<int> hits(1237, 0);
  // grain 0 = adaptive policy; correctness must not depend on the grain.
  ts.taskloop(0, &current, 0, 1237, /*grain=*/0, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
  ts.drain(0, &current);
  implicit->release();
}

TEST(TaskSystem, TaskloopEmptyRangeSpawnsNothing) {
  TaskSystem ts;
  Task* implicit = ts.make_implicit();
  Task* current = implicit;
  bool ran = false;
  ts.taskloop(0, &current, 5, 5, 0, [&](long, long) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_EQ(ts.queued(), 0u);
  implicit->release();
}

// --- runtime integration ------------------------------------------------------

class TaskRuntimeTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  Runtime make_runtime(unsigned threads = 4) {
    RuntimeOptions opts;
    opts.backend = GetParam();
    Icvs icvs;
    icvs.num_threads = threads;
    opts.icvs = icvs;
    return Runtime(opts);
  }
};

TEST_P(TaskRuntimeTest, TasksRunByRegionEnd) {
  Runtime rt = make_runtime();
  std::atomic<int> done{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < 100; ++i) {
        ctx.task([&done] { done.fetch_add(1); });
      }
    }, /*nowait=*/true);
  });
  // The implicit region barrier must have executed every task.
  EXPECT_EQ(done.load(), 100);
}

TEST_P(TaskRuntimeTest, TaskwaitWaitsForChildren) {
  Runtime rt = make_runtime();
  std::atomic<int> children_done{0};
  std::atomic<bool> taskwait_early{false};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < 16; ++i) {
        ctx.task([&] { children_done.fetch_add(1); });
      }
      ctx.taskwait();
      if (children_done.load() != 16) taskwait_early.store(true);
    });
  });
  EXPECT_FALSE(taskwait_early.load());
  EXPECT_EQ(children_done.load(), 16);
}

TEST_P(TaskRuntimeTest, TaskwaitOnlyWaitsForDirectChildren) {
  Runtime rt = make_runtime();
  std::atomic<int> grandchildren{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      ctx.task([&] {
        // This child spawns its own child; the parent's taskwait must not
        // require the grandchild (only direct children).
        Runtime::current()->task([&] { grandchildren.fetch_add(1); });
      });
      ctx.taskwait();
    });
  });
  // Region end still runs everything.
  EXPECT_EQ(grandchildren.load(), 1);
}

TEST_P(TaskRuntimeTest, TaskgroupWaitsForTagged) {
  Runtime rt = make_runtime();
  std::atomic<int> in_group{0};
  std::atomic<bool> early{false};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      ctx.taskgroup([&] {
        for (int i = 0; i < 32; ++i) {
          ctx.task([&] { in_group.fetch_add(1); });
        }
      });
      if (in_group.load() != 32) early.store(true);
    });
  });
  EXPECT_FALSE(early.load());
}

TEST_P(TaskRuntimeTest, RecursiveFibonacciTasks) {
  Runtime rt = make_runtime();
  // Each invocation uses the *executing* thread's context, so spawns and
  // waits are attributed to the task actually running them.
  std::function<long(int)> fib = [&](int n) -> long {
    ParallelContext& ctx = *Runtime::current();
    if (n < 2) return n;
    long a = 0, b = 0;
    ctx.task([&fib, &a, n] { a = fib(n - 1); });
    b = fib(n - 2);
    ctx.taskwait();
    return a + b;
  };
  long result = 0;
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] { result = fib(12); });
  });
  EXPECT_EQ(result, 144);
}

TEST_P(TaskRuntimeTest, TasksExecuteOnMultipleThreads) {
  Runtime rt = make_runtime(4);
  std::mutex mu;
  std::set<unsigned> executors;
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < 200; ++i) {
        ctx.task([&] {
          ParallelContext* me = Runtime::current();
          std::lock_guard lk(mu);
          executors.insert(me->thread_num());
        });
      }
    }, /*nowait=*/true);
    // Everyone else falls through to the implicit barrier and helps.
  });
  // On an oversubscribed host we cannot guarantee all 4 participate, but
  // the single's spawner cannot have done everything alone while 3 threads
  // drained the queue at the barrier — expect at least 2 executors
  // overwhelmingly often.  (Property kept loose to stay deterministic.)
  EXPECT_GE(executors.size(), 1u);
}

TEST_P(TaskRuntimeTest, TaskDependPipelineAcrossThreads) {
  // A three-stage produce/transform/consume pipeline per element: the
  // depend edges, not spawn order or thread assignment, carry correctness.
  Runtime rt = make_runtime();
  constexpr int kN = 32;
  std::vector<long> cells(kN, 0);
  std::vector<long> results(kN, 0);
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < kN; ++i) {
        const void* addr = &cells[static_cast<std::size_t>(i)];
        ctx.task_depend([&cells, i] { cells[static_cast<std::size_t>(i)] = i; },
                        {}, {addr});
        ctx.task_depend(
            [&cells, i] { cells[static_cast<std::size_t>(i)] *= 10; }, {},
            {addr});
        ctx.task_depend(
            [&cells, &results, i] {
              results[static_cast<std::size_t>(i)] =
                  cells[static_cast<std::size_t>(i)];
            },
            {addr}, {});
      }
    }, /*nowait=*/true);
  });
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(results[static_cast<std::size_t>(i)], 10L * i) << "element " << i;
  }
}

TEST_P(TaskRuntimeTest, TaskloopSumsRange) {
  Runtime rt = make_runtime();
  std::atomic<long> sum{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      ctx.taskloop(1, 1001, [&](long lo, long hi) {
        long local = 0;
        for (long i = lo; i < hi; ++i) local += i;
        sum.fetch_add(local);
      });
      // taskloop has an implicit taskgroup: complete when the call returns.
      EXPECT_EQ(sum.load(), 500500L);
    });
  });
  EXPECT_EQ(sum.load(), 500500L);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, TaskRuntimeTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kMca),
                         [](const ::testing::TestParamInfo<BackendKind>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace ompmca::gomp
