// End-to-end runtime semantics, parameterized over both system backends —
// every behaviour here must be identical under "stock libGOMP" (native) and
// "MCA-libGOMP" (mca), which is the paper's core claim.
#include "gomp/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "gomp/backend_native.hpp"
#include "gomp/gomp.hpp"
#include "mrapi/database.hpp"

namespace ompmca::gomp {
namespace {

RuntimeOptions options_for(BackendKind kind, unsigned threads = 8) {
  RuntimeOptions opts;
  opts.backend = kind;
  Icvs icvs;
  icvs.num_threads = threads;
  opts.icvs = icvs;
  return opts;
}

class RuntimeBackendTest : public ::testing::TestWithParam<BackendKind> {
 protected:
  std::unique_ptr<Runtime> make_runtime(unsigned threads = 8) {
    return std::make_unique<Runtime>(options_for(GetParam(), threads));
  }
};

TEST_P(RuntimeBackendTest, ParallelRunsAllThreadsOnce) {
  auto rt = make_runtime(8);
  std::vector<std::atomic<int>> hits(8);
  for (auto& h : hits) h.store(0);
  rt->parallel([&](ParallelContext& ctx) {
    EXPECT_EQ(ctx.num_threads(), 8u);
    hits[ctx.thread_num()].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_P(RuntimeBackendTest, NumThreadsClauseOverridesIcv) {
  auto rt = make_runtime(8);
  std::atomic<unsigned> seen{0};
  rt->parallel([&](ParallelContext& ctx) { seen = ctx.num_threads(); }, 3);
  EXPECT_EQ(seen.load(), 3u);
}

TEST_P(RuntimeBackendTest, RepeatedRegionsReuseSemantics) {
  auto rt = make_runtime(4);
  for (int r = 0; r < 50; ++r) {
    std::atomic<int> count{0};
    rt->parallel([&](ParallelContext&) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 4);
  }
}

TEST_P(RuntimeBackendTest, ParallelForSumsCorrectly) {
  auto rt = make_runtime(8);
  const long n = 100000;
  std::vector<double> data(n, 1.0);
  std::atomic<long> touched{0};
  rt->parallel_for(0, n, [&](long lo, long hi) {
    for (long i = lo; i < hi; ++i) data[i] *= 2.0;
    touched.fetch_add(hi - lo);
  });
  EXPECT_EQ(touched.load(), n);
  EXPECT_DOUBLE_EQ(std::accumulate(data.begin(), data.end(), 0.0), 2.0 * n);
}

TEST_P(RuntimeBackendTest, ForLoopAllSchedules) {
  auto rt = make_runtime(6);
  for (Schedule kind : {Schedule::kStatic, Schedule::kDynamic,
                        Schedule::kGuided, Schedule::kAuto}) {
    const long n = 10007;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    rt->parallel([&](ParallelContext& ctx) {
      ctx.for_loop(
          0, n,
          [&](long lo, long hi) {
            for (long i = lo; i < hi; ++i) hits[i].fetch_add(1);
          },
          ScheduleSpec{kind, kind == Schedule::kStatic ? 5 : 3});
    });
    for (long i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << to_string(kind) << " iter " << i;
    }
  }
}

TEST_P(RuntimeBackendTest, RuntimeScheduleUsesIcv) {
  auto opts = options_for(GetParam(), 4);
  opts.icvs->run_schedule = ScheduleSpec{Schedule::kDynamic, 2};
  Runtime rt(opts);
  std::atomic<long> covered{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.for_loop(
        0, 1000, [&](long lo, long hi) { covered.fetch_add(hi - lo); },
        ScheduleSpec{Schedule::kRuntime, 0});
  });
  EXPECT_EQ(covered.load(), 1000);
}

TEST_P(RuntimeBackendTest, ConsecutiveNowaitLoops) {
  auto rt = make_runtime(4);
  const long n = 1000;
  std::vector<std::atomic<int>> a(n), b(n), c(n);
  for (long i = 0; i < n; ++i) {
    a[i].store(0);
    b[i].store(0);
    c[i].store(0);
  }
  rt->parallel([&](ParallelContext& ctx) {
    ctx.for_loop(0, n, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) a[i].fetch_add(1);
    }, {}, /*nowait=*/true);
    ctx.for_loop(0, n, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) b[i].fetch_add(1);
    }, {}, /*nowait=*/true);
    ctx.for_loop(0, n, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) c[i].fetch_add(1);
    }, {}, /*nowait=*/true);
  });
  for (long i = 0; i < n; ++i) {
    ASSERT_EQ(a[i].load(), 1);
    ASSERT_EQ(b[i].load(), 1);
    ASSERT_EQ(c[i].load(), 1);
  }
}

TEST_P(RuntimeBackendTest, BarrierSeparatesPhases) {
  auto rt = make_runtime(6);
  std::vector<int> phase1(6, 0);
  std::atomic<bool> violation{false};
  rt->parallel([&](ParallelContext& ctx) {
    phase1[ctx.thread_num()] = 1;
    ctx.barrier();
    for (int v : phase1) {
      if (v != 1) violation.store(true);
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST_P(RuntimeBackendTest, SingleExecutesExactlyOnce) {
  auto rt = make_runtime(8);
  for (int round = 0; round < 10; ++round) {
    std::atomic<int> count{0};
    std::atomic<int> after{0};
    rt->parallel([&](ParallelContext& ctx) {
      ctx.single([&] { count.fetch_add(1); });
      // The implicit barrier of single() guarantees visibility here.
      if (count.load() != 1) after.fetch_add(1);
    });
    ASSERT_EQ(count.load(), 1);
    ASSERT_EQ(after.load(), 0);
  }
}

TEST_P(RuntimeBackendTest, SequenceOfSinglesDistributes) {
  auto rt = make_runtime(4);
  std::atomic<int> total{0};
  rt->parallel([&](ParallelContext& ctx) {
    for (int i = 0; i < 20; ++i) {
      ctx.single([&] { total.fetch_add(1); });
    }
  });
  EXPECT_EQ(total.load(), 20);
}

TEST_P(RuntimeBackendTest, MasterOnlyThreadZero) {
  auto rt = make_runtime(8);
  std::atomic<int> count{0};
  std::atomic<unsigned> who{999};
  rt->parallel([&](ParallelContext& ctx) {
    ctx.master([&] {
      count.fetch_add(1);
      who.store(ctx.thread_num());
    });
  });
  EXPECT_EQ(count.load(), 1);
  EXPECT_EQ(who.load(), 0u);
}

TEST_P(RuntimeBackendTest, CriticalProvidesMutualExclusion) {
  auto rt = make_runtime(8);
  long counter = 0;  // unsynchronized on purpose: critical must protect it
  rt->parallel([&](ParallelContext& ctx) {
    for (int i = 0; i < 1000; ++i) {
      ctx.critical([&] { ++counter; });
    }
  });
  EXPECT_EQ(counter, 8000);
}

TEST_P(RuntimeBackendTest, NamedCriticalsAreIndependentLocks) {
  auto rt = make_runtime(4);
  long a = 0, b = 0;
  rt->parallel([&](ParallelContext& ctx) {
    for (int i = 0; i < 500; ++i) {
      ctx.critical("lock_a", [&] { ++a; });
      ctx.critical("lock_b", [&] { ++b; });
    }
  });
  EXPECT_EQ(a, 2000);
  EXPECT_EQ(b, 2000);
}

TEST_P(RuntimeBackendTest, ReductionSumDeterministic) {
  auto rt = make_runtime(8);
  double result = 0.0;
  rt->parallel([&](ParallelContext& ctx) {
    double local = 0.0;
    ctx.for_loop(1, 1001, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) local += static_cast<double>(i);
    }, {}, /*nowait=*/true);
    double total = ctx.reduce_sum(local);
    if (ctx.thread_num() == 0) result = total;
  });
  EXPECT_DOUBLE_EQ(result, 500500.0);
}

TEST_P(RuntimeBackendTest, ReductionMinMax) {
  auto rt = make_runtime(6);
  long max_val = 0, min_val = 0;
  rt->parallel([&](ParallelContext& ctx) {
    long tid = static_cast<long>(ctx.thread_num());
    long mx = ctx.reduce_max(tid * 10 + 1);
    long mn = ctx.reduce_min(tid * 10 + 1);
    if (tid == 0) {
      max_val = mx;
      min_val = mn;
    }
  });
  EXPECT_EQ(max_val, 51);
  EXPECT_EQ(min_val, 1);
}

TEST_P(RuntimeBackendTest, ReductionCustomOpStruct) {
  struct MinMax {
    double lo, hi;
  };
  auto rt = make_runtime(5);
  MinMax out{0, 0};
  rt->parallel([&](ParallelContext& ctx) {
    double v = static_cast<double>(ctx.thread_num());
    MinMax local{v, v};
    MinMax all = ctx.reduce(local, [](MinMax a, MinMax b) {
      return MinMax{std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
    });
    if (ctx.thread_num() == 0) out = all;
  });
  EXPECT_DOUBLE_EQ(out.lo, 0.0);
  EXPECT_DOUBLE_EQ(out.hi, 4.0);
}

TEST_P(RuntimeBackendTest, SectionsRunEachBodyOnce) {
  auto rt = make_runtime(4);
  std::atomic<int> s1{0}, s2{0}, s3{0};
  rt->parallel([&](ParallelContext& ctx) {
    // FunctionRef is non-owning: the lambdas must be named lvalues that
    // outlive the sections call.
    auto b1 = [&s1] { s1.fetch_add(1); };
    auto b2 = [&s2] { s2.fetch_add(1); };
    auto b3 = [&s3] { s3.fetch_add(1); };
    ctx.sections({FunctionRef<void()>(b1), FunctionRef<void()>(b2),
                  FunctionRef<void()>(b3)});
  });
  EXPECT_EQ(s1.load(), 1);
  EXPECT_EQ(s2.load(), 1);
  EXPECT_EQ(s3.load(), 1);
}

TEST_P(RuntimeBackendTest, OrderedExecutesInIterationOrder) {
  auto rt = make_runtime(4);
  std::vector<long> order;
  rt->parallel([&](ParallelContext& ctx) {
    ctx.for_loop_ordered(
        0, 100,
        [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            ctx.ordered(i, [&] { order.push_back(i); });
          }
        },
        ScheduleSpec{Schedule::kDynamic, 1});
  });
  ASSERT_EQ(order.size(), 100u);
  for (long i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(RuntimeBackendTest, NestedParallelSerializesByDefault) {
  auto rt = make_runtime(4);
  std::atomic<int> inner_sizes{0};
  rt->parallel([&](ParallelContext&) {
    rt->parallel([&](ParallelContext& inner) {
      if (inner.num_threads() == 1) inner_sizes.fetch_add(1);
    });
  });
  EXPECT_EQ(inner_sizes.load(), 4);
}

TEST_P(RuntimeBackendTest, NestedParallelWhenEnabled) {
  auto opts = options_for(GetParam(), 3);
  opts.icvs->nested = true;
  opts.icvs->max_active_levels = 2;
  Runtime rt(opts);
  std::atomic<int> total{0};
  rt.parallel([&](ParallelContext&) {
    rt.parallel([&](ParallelContext&) { total.fetch_add(1); }, 2);
  });
  EXPECT_EQ(total.load(), 6);  // 3 outer x 2 inner
}

TEST_P(RuntimeBackendTest, MetersAccumulatePerThread) {
  auto rt = make_runtime(4);
  rt->parallel([&](ParallelContext& ctx) {
    ctx.meter().flops += 100.0 * (ctx.thread_num() + 1);
    ctx.meter().bytes += 10.0;
  });
  const auto& meters = rt->last_region_meters();
  ASSERT_EQ(meters.size(), 4u);
  for (unsigned t = 0; t < 4; ++t) {
    EXPECT_DOUBLE_EQ(meters[t].flops, 100.0 * (t + 1));
    EXPECT_DOUBLE_EQ(meters[t].bytes, 10.0);
  }
}

TEST_P(RuntimeBackendTest, PerRegionPoolModeWorks) {
  auto opts = options_for(GetParam(), 4);
  opts.pool_mode = PoolMode::kPerRegion;
  Runtime rt(opts);
  for (int r = 0; r < 5; ++r) {
    std::atomic<int> count{0};
    rt.parallel([&](ParallelContext&) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 4);
  }
}

TEST_P(RuntimeBackendTest, AllBarrierAlgorithmsWorkEndToEnd) {
  for (BarrierKind kind :
       {BarrierKind::kCentral, BarrierKind::kTree, BarrierKind::kDissemination,
        BarrierKind::kHierarchical, BarrierKind::kAuto}) {
    auto opts = options_for(GetParam(), 6);
    opts.barrier = kind;
    Runtime rt(opts);
    std::atomic<long> total{0};
    rt.parallel([&](ParallelContext& ctx) {
      for (int phase = 0; phase < 10; ++phase) {
        total.fetch_add(1);
        ctx.barrier();
      }
    });
    EXPECT_EQ(total.load(), 60);
  }
}

TEST_P(RuntimeBackendTest, AutoBarrierResolvesToHierarchicalAcrossClusters) {
  // Default scatter placement spreads even a small team over all three
  // clusters, so the kAuto default must land on the hierarchical barrier.
  auto opts = options_for(GetParam(), 6);
  ASSERT_EQ(opts.barrier, BarrierKind::kAuto);
  Runtime rt(opts);
  rt.parallel([&](ParallelContext& ctx) {
    if (ctx.thread_num() == 0) {
      EXPECT_EQ(ctx.team().barrier_kind(), BarrierKind::kHierarchical);
    }
    ctx.barrier();
  });
}

TEST_P(RuntimeBackendTest, WidthOneTeamTakesFastPath) {
  auto rt = make_runtime(4);
  // A width-1 region constructs no barrier at all and never touches the
  // worker pool; barriers and loops inside it must still be no-ops.
  int runs = 0;
  rt->parallel(
      [&](ParallelContext& ctx) {
        EXPECT_EQ(ctx.num_threads(), 1u);
        EXPECT_EQ(ctx.team().team_barrier(), nullptr);
        ctx.barrier();  // must not hang
        long sum = 0;
        ctx.for_loop(0, 100, [&](long lo, long hi) { sum += hi - lo; });
        EXPECT_EQ(sum, 100);
        ++runs;
      },
      1);
  EXPECT_EQ(runs, 1);

  // Nested width-1 regions (the common "nested disabled" shape) take the
  // same fast path at every level.
  std::atomic<int> inner_runs{0};
  rt->parallel([&](ParallelContext& outer_ctx) {
    outer_ctx.runtime().parallel(
        [&](ParallelContext& inner) {
          EXPECT_EQ(inner.team().team_barrier(), nullptr);
          inner.barrier();
          inner_runs.fetch_add(1);
        },
        1);
  });
  EXPECT_EQ(inner_runs.load(), 4);
}

TEST_P(RuntimeBackendTest, NestedTeamGetsBubblePlacement) {
  // A nested team narrow enough to fit one cluster is pinned inside a
  // single cluster (preferably the master's) instead of scattering.
  auto opts = options_for(GetParam(), 3);
  opts.icvs->nested = true;
  opts.icvs->max_active_levels = 2;
  Runtime rt(opts);
  ASSERT_TRUE(rt.nested_bubble());
  std::atomic<int> bubbled{0}, inner_total{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.runtime().parallel(
        [&](ParallelContext& inner) {
          inner_total.fetch_add(1);
          Team& team = inner.team();
          if (inner.thread_num() == 0 && team.bubble_cluster().has_value()) {
            bubbled.fetch_add(1);
            const unsigned home = *team.bubble_cluster();
            for (unsigned t = 0; t < inner.num_threads(); ++t) {
              EXPECT_EQ(team.cluster_of_thread(t), home);
            }
            // Single-cluster team: the hierarchical request collapses, so
            // the effective kind is never kHierarchical here.
            EXPECT_NE(team.barrier_kind(), BarrierKind::kHierarchical);
          }
          inner.barrier();
        },
        2);
  });
  EXPECT_EQ(inner_total.load(), 3 * 2);
  // Three clusters of capacity 8 can hold three 2-wide bubbles: every
  // nested team must have been placed.
  EXPECT_EQ(bubbled.load(), 3);
}

TEST_P(RuntimeBackendTest, NestedPlacementFlatKnobDisablesBubbles) {
  auto opts = options_for(GetParam(), 3);
  opts.icvs->nested = true;
  opts.icvs->max_active_levels = 2;
  opts.nested_bubble = false;
  Runtime rt(opts);
  EXPECT_FALSE(rt.nested_bubble());
  std::atomic<int> bubbled{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.runtime().parallel(
        [&](ParallelContext& inner) {
          if (inner.team().bubble_cluster().has_value()) bubbled.fetch_add(1);
          inner.barrier();
        },
        2);
  });
  EXPECT_EQ(bubbled.load(), 0);
}

TEST_P(RuntimeBackendTest, ThreadNumsAreDistinct) {
  auto rt = make_runtime(8);
  std::mutex mu;
  std::set<unsigned> seen;
  rt->parallel([&](ParallelContext& ctx) {
    std::lock_guard lk(mu);
    seen.insert(ctx.thread_num());
  });
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 7u);
}

TEST_P(RuntimeBackendTest, TwentyFourThreadRegion) {
  // The board's full width.
  auto rt = make_runtime(24);
  std::atomic<int> count{0};
  rt->parallel([&](ParallelContext& ctx) {
    count.fetch_add(1);
    ctx.barrier();
    EXPECT_EQ(count.load(), 24);
  });
  EXPECT_EQ(count.load(), 24);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, RuntimeBackendTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kMca),
                         [](const ::testing::TestParamInfo<BackendKind>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// --- runtime-level (backend-independent) ---------------------------------------

TEST(Runtime, DefaultThreadCountFromMetadata) {
  // Without OMP_NUM_THREADS, the pool is sized from the platform: 24 on the
  // modelled T4240RDB (§5B.4).
  ::unsetenv("OMP_NUM_THREADS");
  Runtime rt(RuntimeOptions{});
  EXPECT_EQ(rt.max_threads(), 24u);
}

TEST(Runtime, ResolveNumThreadsClamps) {
  auto opts = options_for(BackendKind::kNative, 8);
  opts.icvs->thread_limit = 16;
  Runtime rt(opts);
  EXPECT_EQ(rt.resolve_num_threads(0), 8u);
  EXPECT_EQ(rt.resolve_num_threads(5), 5u);
  EXPECT_EQ(rt.resolve_num_threads(100), 16u);
}

/// Native backend whose nested-range (id >= 128) launches fail on demand:
/// the probe for nested-id reclamation after launch failure.
class NestedLaunchFailBackend final : public SystemBackend {
 public:
  explicit NestedLaunchFailBackend(std::shared_ptr<std::atomic<bool>> fail)
      : fail_(std::move(fail)), inner_(platform::Topology::t4240rdb()) {}

  std::string_view name() const override { return "nested-launch-fail"; }
  Status launch_thread(unsigned index, std::function<void()> fn) override {
    if (index >= 128 && fail_->load()) return Status::kOutOfResources;
    return inner_.launch_thread(index, std::move(fn));
  }
  Status join_thread(unsigned index) override {
    return inner_.join_thread(index);
  }
  void* allocate(std::size_t bytes) override { return inner_.allocate(bytes); }
  void deallocate(void* p) override { inner_.deallocate(p); }
  std::unique_ptr<BackendMutex> create_mutex() override {
    return inner_.create_mutex();
  }
  unsigned num_procs() override { return inner_.num_procs(); }

 private:
  std::shared_ptr<std::atomic<bool>> fail_;
  NativeBackend inner_;
};

TEST(Runtime, NestedIdsReclaimedImmediatelyOnLaunchFailure) {
  auto fail = std::make_shared<std::atomic<bool>>(false);
  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = 2;
  icvs.nested = true;
  icvs.max_active_levels = 2;
  opts.icvs = icvs;
  opts.backend_factory = [fail] {
    return std::make_unique<NestedLaunchFailBackend>(fail);
  };
  Runtime rt(opts);

  rt.parallel([&](ParallelContext& ctx) {
    if (ctx.thread_num() != 0) return;
    // Drain the whole nested-id range (128 ids) into launches that all
    // fail: the region serializes, and every reserved id must go straight
    // back into circulation — not sit parked until this outer region ends.
    fail->store(true);
    std::atomic<int> first{0};
    rt.parallel([&](ParallelContext&) { first.fetch_add(1); }, 200);
    EXPECT_EQ(first.load(), 1);
    fail->store(false);
    // Still inside the same outer region: a sibling nested team must find
    // the ids free again and get its full width.
    std::atomic<int> second{0};
    rt.parallel([&](ParallelContext&) { second.fetch_add(1); }, 3);
    EXPECT_EQ(second.load(), 3);
  });
}

TEST(Runtime, TwoRuntimesSideBySide) {
  // The benches run native and MCA simultaneously; they must not interfere.
  Runtime native(options_for(BackendKind::kNative, 4));
  Runtime mca(options_for(BackendKind::kMca, 4));
  std::atomic<int> a{0}, b{0};
  native.parallel([&](ParallelContext&) { a.fetch_add(1); });
  mca.parallel([&](ParallelContext&) { b.fetch_add(1); });
  EXPECT_EQ(a.load(), 4);
  EXPECT_EQ(b.load(), 4);
}

}  // namespace
}  // namespace ompmca::gomp
