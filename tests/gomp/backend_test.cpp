#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "gomp/backend_mca.hpp"
#include "gomp/backend_native.hpp"
#include "gomp/runtime.hpp"
#include "mrapi/database.hpp"

namespace ompmca::gomp {
namespace {

std::unique_ptr<SystemBackend> make(BackendKind kind) {
  if (kind == BackendKind::kNative) {
    return std::make_unique<NativeBackend>(platform::Topology::t4240rdb());
  }
  mrapi::Database::instance().configure_platform(
      platform::Topology::t4240rdb());
  return std::make_unique<McaBackend>(0);
}

class BackendTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(BackendTest, Name) {
  auto b = make(GetParam());
  EXPECT_EQ(b->name(), GetParam() == BackendKind::kNative ? "native" : "mca");
}

TEST_P(BackendTest, LaunchAndJoinThreads) {
  auto b = make(GetParam());
  std::atomic<int> sum{0};
  for (unsigned i = 0; i < 8; ++i) {
    ASSERT_EQ(b->launch_thread(i, [&sum, i] { sum.fetch_add(i + 1); }),
              Status::kSuccess);
  }
  for (unsigned i = 0; i < 8; ++i) {
    EXPECT_EQ(b->join_thread(i), Status::kSuccess);
  }
  EXPECT_EQ(sum.load(), 36);
}

TEST_P(BackendTest, DuplicateIndexRejected) {
  auto b = make(GetParam());
  std::atomic<bool> release{false};
  ASSERT_EQ(b->launch_thread(0, [&release] {
    while (!release.load()) std::this_thread::yield();
  }), Status::kSuccess);
  EXPECT_EQ(b->launch_thread(0, [] {}), Status::kNodeExists);
  release.store(true);
  EXPECT_EQ(b->join_thread(0), Status::kSuccess);
}

TEST_P(BackendTest, JoinUnknownIndex) {
  auto b = make(GetParam());
  EXPECT_EQ(b->join_thread(42), Status::kNodeInvalid);
}

TEST_P(BackendTest, IndexReusableAfterJoin) {
  auto b = make(GetParam());
  for (int round = 0; round < 3; ++round) {
    ASSERT_EQ(b->launch_thread(0, [] {}), Status::kSuccess);
    ASSERT_EQ(b->join_thread(0), Status::kSuccess);
  }
}

TEST_P(BackendTest, AllocateAndUseMemory) {
  auto b = make(GetParam());
  void* p = b->allocate(4096);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, 4096);
  b->deallocate(p);
}

TEST_P(BackendTest, ManyAllocations) {
  auto b = make(GetParam());
  std::vector<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = b->allocate(64 + i);
    ASSERT_NE(p, nullptr);
    ptrs.push_back(p);
  }
  for (void* p : ptrs) b->deallocate(p);
}

TEST_P(BackendTest, MutexProtectsCounter) {
  auto b = make(GetParam());
  auto mu = b->create_mutex();
  ASSERT_NE(mu, nullptr);
  long counter = 0;
  for (unsigned t = 0; t < 4; ++t) {
    ASSERT_EQ(b->launch_thread(t, [&] {
      for (int i = 0; i < 1000; ++i) {
        BackendLockGuard guard(*mu);
        ++counter;
      }
    }), Status::kSuccess);
  }
  for (unsigned t = 0; t < 4; ++t) (void)b->join_thread(t);
  EXPECT_EQ(counter, 4000);
}

TEST_P(BackendTest, MutexTryLock) {
  auto b = make(GetParam());
  auto mu = b->create_mutex();
  ASSERT_TRUE(mu->try_lock());
  std::thread t([&] { EXPECT_FALSE(mu->try_lock()); });
  t.join();
  mu->unlock();
  ASSERT_TRUE(mu->try_lock());
  mu->unlock();
}

TEST_P(BackendTest, NumProcsReportsBoard) {
  auto b = make(GetParam());
  EXPECT_EQ(b->num_procs(), 24u);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, BackendTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kMca),
                         [](const ::testing::TestParamInfo<BackendKind>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

// --- MCA-specific behaviour ------------------------------------------------------

TEST(McaBackendSpecific, WorkersAreMrapiNodes) {
  mrapi::Database::instance().configure_platform(
      platform::Topology::t4240rdb());
  McaBackend b(0);
  auto md = b.node().metadata();
  ASSERT_TRUE(md.has_value());
  std::size_t base = md->nodes_online();

  std::atomic<bool> release{false};
  ASSERT_EQ(b.launch_thread(0, [&release] {
    while (!release.load()) std::this_thread::yield();
  }), Status::kSuccess);
  // Worker registered in the domain-wide database (§5B.1).
  EXPECT_EQ(md->nodes_online(), base + 1);
  release.store(true);
  ASSERT_EQ(b.join_thread(0), Status::kSuccess);
  EXPECT_EQ(md->nodes_online(), base);
}

TEST(McaBackendSpecific, AllocationsAreHeapModeShmem) {
  McaBackend b(0);
  void* p = b.allocate(256);
  ASSERT_NE(p, nullptr);
  // The segment must NOT have consumed the domain's system arena.
  auto d = mrapi::Database::instance().find_domain(0);
  ASSERT_TRUE(d.has_value());
  // (gomp allocations are keyed privately; just check we can free cleanly.)
  b.deallocate(p);
  EXPECT_EQ(b.failed_allocations(), 0u);
}

TEST(McaBackendSpecific, TwoBackendsShareOneDomain) {
  McaBackend a(0), b(0);
  // Distinct master nodes in the same domain.
  EXPECT_NE(a.node().node_id(), b.node().node_id());
  std::atomic<int> total{0};
  ASSERT_EQ(a.launch_thread(0, [&] { total.fetch_add(1); }), Status::kSuccess);
  ASSERT_EQ(b.launch_thread(0, [&] { total.fetch_add(1); }), Status::kSuccess);
  (void)a.join_thread(0);
  (void)b.join_thread(0);
  EXPECT_EQ(total.load(), 2);
}

}  // namespace
}  // namespace ompmca::gomp
