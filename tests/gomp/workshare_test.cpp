#include "gomp/workshare.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace ompmca::gomp {
namespace {

// --- static_chunk: pure function, exhaustive properties -----------------------

struct StaticCase {
  long begin, end, chunk;
  unsigned nthreads;
};

class StaticChunkTest : public ::testing::TestWithParam<StaticCase> {};

TEST_P(StaticChunkTest, PartitionIsExactCover) {
  const auto c = GetParam();
  std::vector<int> hits(static_cast<std::size_t>(c.end - c.begin), 0);
  for (unsigned tid = 0; tid < c.nthreads; ++tid) {
    long pos = 0;
    long lo = 0, hi = 0;
    while (static_chunk(c.begin, c.end, c.chunk, tid, c.nthreads, pos, &lo,
                        &hi)) {
      ++pos;
      ASSERT_LE(c.begin, lo);
      ASSERT_LT(lo, hi);
      ASSERT_LE(hi, c.end);
      for (long i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i - c.begin)];
      if (c.chunk <= 0) break;  // block schedule: single chunk per thread
    }
  }
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "iteration " << (c.begin + static_cast<long>(i));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StaticChunkTest,
    ::testing::Values(StaticCase{0, 100, 0, 1}, StaticCase{0, 100, 0, 3},
                      StaticCase{0, 100, 0, 24}, StaticCase{0, 7, 0, 24},
                      StaticCase{5, 105, 0, 8}, StaticCase{0, 100, 1, 4},
                      StaticCase{0, 100, 7, 4}, StaticCase{0, 99, 10, 3},
                      StaticCase{-50, 50, 13, 5}, StaticCase{0, 1, 0, 2},
                      StaticCase{0, 24, 1, 24}, StaticCase{0, 23, 4, 24}));

TEST(StaticChunk, EmptyRange) {
  long lo, hi;
  EXPECT_FALSE(static_chunk(10, 10, 0, 0, 4, 0, &lo, &hi));
  EXPECT_FALSE(static_chunk(10, 5, 0, 0, 4, 0, &lo, &hi));
}

TEST(StaticChunk, BlockRemainderGoesToFirstThreads) {
  // 10 iterations over 4 threads: 3,3,2,2.
  long lo, hi;
  ASSERT_TRUE(static_chunk(0, 10, 0, 0, 4, 0, &lo, &hi));
  EXPECT_EQ(hi - lo, 3);
  ASSERT_TRUE(static_chunk(0, 10, 0, 1, 4, 0, &lo, &hi));
  EXPECT_EQ(hi - lo, 3);
  ASSERT_TRUE(static_chunk(0, 10, 0, 2, 4, 0, &lo, &hi));
  EXPECT_EQ(hi - lo, 2);
  ASSERT_TRUE(static_chunk(0, 10, 0, 3, 4, 0, &lo, &hi));
  EXPECT_EQ(hi - lo, 2);
}

TEST(StaticChunk, CyclicAssignsRoundRobin) {
  // chunk=2, 3 threads: thread 1's chunks are [2,4), [8,10), ...
  long lo, hi;
  ASSERT_TRUE(static_chunk(0, 12, 2, 1, 3, 0, &lo, &hi));
  EXPECT_EQ(lo, 2);
  EXPECT_EQ(hi, 4);
  ASSERT_TRUE(static_chunk(0, 12, 2, 1, 3, 1, &lo, &hi));
  EXPECT_EQ(lo, 8);
  EXPECT_EQ(hi, 10);
  EXPECT_FALSE(static_chunk(0, 12, 2, 1, 3, 2, &lo, &hi));
}

// --- LoopInstance: concurrent schedules cover every iteration exactly once ----

struct LoopCase {
  Schedule kind;
  long chunk;
  unsigned nthreads;
  long iterations;
};

class LoopInstanceTest : public ::testing::TestWithParam<LoopCase> {};

TEST_P(LoopInstanceTest, ChunksCoverRangeExactlyOnce) {
  const auto c = GetParam();
  LoopInstance loop;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(c.iterations));
  for (auto& h : hits) h.store(0);

  auto worker = [&](unsigned tid) {
    loop.enter(/*gen=*/0, 0, c.iterations, ScheduleSpec{c.kind, c.chunk},
               c.nthreads);
    long pos = 0, lo = 0, hi = 0;
    while (loop.next_chunk(tid, &pos, &lo, &hi)) {
      ASSERT_LE(0, lo);
      ASSERT_LT(lo, hi);
      ASSERT_LE(hi, c.iterations);
      for (long i = lo; i < hi; ++i)
        hits[static_cast<std::size_t>(i)].fetch_add(1);
    }
    loop.leave();
  };

  std::vector<std::thread> threads;
  for (unsigned t = 1; t < c.nthreads; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (auto& t : threads) t.join();

  for (long i = 0; i < c.iterations; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
        << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, LoopInstanceTest,
    ::testing::Values(
        LoopCase{Schedule::kStatic, 0, 4, 1000},
        LoopCase{Schedule::kStatic, 7, 4, 1000},
        LoopCase{Schedule::kStatic, 0, 24, 10},
        LoopCase{Schedule::kDynamic, 1, 4, 1000},
        LoopCase{Schedule::kDynamic, 16, 8, 1000},
        LoopCase{Schedule::kGuided, 1, 4, 1000},
        LoopCase{Schedule::kGuided, 8, 8, 5000},
        LoopCase{Schedule::kAuto, 0, 6, 999},
        LoopCase{Schedule::kDynamic, 1000, 4, 10}),
    [](const ::testing::TestParamInfo<LoopCase>& param_info) {
      const auto& c = param_info.param;
      return std::string(to_string(c.kind)) + "_c" +
             std::to_string(c.chunk) + "_t" + std::to_string(c.nthreads) +
             "_n" + std::to_string(c.iterations);
    });

TEST(LoopInstance, GuidedChunksDecrease) {
  LoopInstance loop;
  loop.enter(0, 0, 10000, ScheduleSpec{Schedule::kGuided, 1}, 4);
  long pos = 0, lo = 0, hi = 0;
  long first = 0, last = 0;
  bool first_seen = false;
  while (loop.next_chunk(0, &pos, &lo, &hi)) {
    if (!first_seen) {
      first = hi - lo;
      first_seen = true;
    }
    last = hi - lo;
  }
  loop.leave();
  EXPECT_GT(first, last);
  EXPECT_EQ(last, 1);  // converges to the minimum chunk
}

TEST(LoopInstance, RingReuseAcrossGenerations) {
  LoopInstance loop;
  for (unsigned long gen = 0; gen < 5; ++gen) {
    loop.enter(gen, 0, 10, ScheduleSpec{}, 1);
    long pos = 0, lo, hi;
    ASSERT_TRUE(loop.next_chunk(0, &pos, &lo, &hi));
    EXPECT_EQ(lo, 0);
    EXPECT_EQ(hi, 10);
    loop.leave();
  }
}

// --- SectionsInstance ----------------------------------------------------------

TEST(Sections, EachSectionRunsOnce) {
  SectionsInstance ws;
  const int kSections = 10;
  std::vector<std::atomic<int>> hits(kSections);
  for (auto& h : hits) h.store(0);
  auto worker = [&](unsigned /*tid*/) {
    ws.enter(0, kSections, 4);
    for (;;) {
      int idx = ws.next_section();
      if (idx < 0) break;
      hits[static_cast<std::size_t>(idx)].fetch_add(1);
    }
    ws.leave();
  };
  std::vector<std::thread> threads;
  for (unsigned t = 1; t < 4; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (auto& t : threads) t.join();
  for (int i = 0; i < kSections; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(Sections, MoreThreadsThanSections) {
  SectionsInstance ws;
  std::atomic<int> total{0};
  auto worker = [&](unsigned) {
    ws.enter(0, 2, 6);
    for (;;) {
      int idx = ws.next_section();
      if (idx < 0) break;
      total.fetch_add(1);
    }
    ws.leave();
  };
  std::vector<std::thread> threads;
  for (unsigned t = 1; t < 6; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (auto& t : threads) t.join();
  EXPECT_EQ(total.load(), 2);
}

}  // namespace
}  // namespace ompmca::gomp
