// Runtime stress and edge cases beyond the per-construct tests.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "gomp/gomp.hpp"

namespace ompmca::gomp {
namespace {

Runtime make_runtime(BackendKind kind, unsigned threads) {
  RuntimeOptions opts;
  opts.backend = kind;
  Icvs icvs;
  icvs.num_threads = threads;
  opts.icvs = icvs;
  return Runtime(opts);
}

class StressTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(StressTest, PoolGrowsAndShrinksAcrossRegions) {
  Runtime rt = make_runtime(GetParam(), 16);
  // Alternate wide and narrow teams: the pool must serve any width without
  // leaking or deadlocking, reusing parked workers.
  const unsigned widths[] = {1, 16, 2, 9, 16, 3, 1, 12};
  for (unsigned width : widths) {
    std::atomic<unsigned> count{0};
    rt.parallel([&](ParallelContext& ctx) {
      count.fetch_add(1);
      EXPECT_EQ(ctx.num_threads(), width);
    }, width);
    ASSERT_EQ(count.load(), width);
  }
  // Workers launched at most max-1 despite 8 regions.
  EXPECT_LE(rt.pool().workers_launched(), 15u);
}

TEST_P(StressTest, ManySmallRegions) {
  Runtime rt = make_runtime(GetParam(), 4);
  std::atomic<long> total{0};
  for (int r = 0; r < 500; ++r) {
    rt.parallel([&](ParallelContext&) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 2000);
}

TEST_P(StressTest, DeepNowaitChainStaysWithinRing) {
  Runtime rt = make_runtime(GetParam(), 4);
  // 12 consecutive nowait loops: 3x the workshare ring depth.  Correctness
  // must hold because the ring blocks re-use until stragglers drain.
  const long n = 256;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  rt.parallel([&](ParallelContext& ctx) {
    for (int round = 0; round < 12; ++round) {
      ctx.for_loop(0, n, [&](long lo, long hi) {
        for (long i = lo; i < hi; ++i) hits[i].fetch_add(1);
      }, ScheduleSpec{Schedule::kDynamic, 16}, /*nowait=*/true);
    }
  });
  for (long i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 12);
}

TEST_P(StressTest, AlternatingConstructsInOneRegion) {
  Runtime rt = make_runtime(GetParam(), 6);
  std::atomic<long> loop_work{0};
  std::atomic<int> singles{0};
  long criticals = 0;
  rt.parallel([&](ParallelContext& ctx) {
    for (int round = 0; round < 20; ++round) {
      ctx.for_loop(0, 100, [&](long lo, long hi) {
        loop_work.fetch_add(hi - lo);
      });
      ctx.single([&] { singles.fetch_add(1); }, /*nowait=*/true);
      ctx.critical([&] { ++criticals; });
      ctx.barrier();
    }
  });
  EXPECT_EQ(loop_work.load(), 20 * 100);
  EXPECT_EQ(singles.load(), 20);
  EXPECT_EQ(criticals, 20 * 6);
}

TEST_P(StressTest, OrderedUnderStaticSchedule) {
  Runtime rt = make_runtime(GetParam(), 4);
  std::vector<long> order;
  rt.parallel([&](ParallelContext& ctx) {
    ctx.for_loop_ordered(
        0, 64,
        [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            ctx.ordered(i, [&] { order.push_back(i); });
          }
        },
        ScheduleSpec{Schedule::kStatic, 0});  // block partition
  });
  ASSERT_EQ(order.size(), 64u);
  for (long i = 0; i < 64; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(StressTest, ReductionInsideLoopOverRegions) {
  Runtime rt = make_runtime(GetParam(), 5);
  for (int r = 1; r <= 30; ++r) {
    long result = 0;
    rt.parallel([&](ParallelContext& ctx) {
      long total = ctx.reduce_sum(static_cast<long>(r));
      if (ctx.thread_num() == 0) result = total;
    });
    ASSERT_EQ(result, 5L * r);
  }
}

TEST_P(StressTest, TasksSpawnedFromEveryThread) {
  Runtime rt = make_runtime(GetParam(), 4);
  std::atomic<int> done{0};
  rt.parallel([&](ParallelContext& ctx) {
    for (int i = 0; i < 25; ++i) {
      ctx.task([&] { done.fetch_add(1); });
    }
    ctx.taskwait();
  });
  EXPECT_EQ(done.load(), 4 * 25);
}

TEST_P(StressTest, NestedSerializedRegionsSeeOwnContext) {
  Runtime rt = make_runtime(GetParam(), 4);
  std::atomic<int> inner_total{0};
  rt.parallel([&](ParallelContext& outer) {
    unsigned outer_tid = outer.thread_num();
    rt.parallel([&](ParallelContext& inner) {
      // Serialized inner region: one thread, thread_num 0, and the omp
      // shims must reflect the innermost region.
      EXPECT_EQ(inner.thread_num(), 0u);
      EXPECT_EQ(inner.num_threads(), 1u);
      EXPECT_EQ(omp_get_thread_num(), 0);
      inner_total.fetch_add(1);
    });
    // Back outside: context restored.
    EXPECT_EQ(omp_get_thread_num(), static_cast<int>(outer_tid));
  });
  EXPECT_EQ(inner_total.load(), 4);
}

TEST_P(StressTest, GuidedScheduleUnbalancedWork) {
  Runtime rt = make_runtime(GetParam(), 6);
  // Triangular work; guided must still cover exactly once.
  const long n = 2000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  std::atomic<double> sink{0};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.for_loop(
        0, n,
        [&](long lo, long hi) {
          double acc = 0;
          for (long i = lo; i < hi; ++i) {
            hits[i].fetch_add(1);
            for (long k = 0; k < i % 64; ++k) acc += static_cast<double>(k);
          }
          sink.store(acc);
        },
        ScheduleSpec{Schedule::kGuided, 2});
  });
  for (long i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST_P(StressTest, BarrierHeavyRegion) {
  Runtime rt = make_runtime(GetParam(), 8);
  std::atomic<long> phases{0};
  rt.parallel([&](ParallelContext& ctx) {
    for (int i = 0; i < 100; ++i) {
      phases.fetch_add(1);
      ctx.barrier();
    }
  });
  EXPECT_EQ(phases.load(), 800);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, StressTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kMca),
                         [](const ::testing::TestParamInfo<BackendKind>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace ompmca::gomp
