#include "gomp/api.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace ompmca::gomp {
namespace {

Runtime make_runtime(BackendKind kind, unsigned threads) {
  RuntimeOptions opts;
  opts.backend = kind;
  Icvs icvs;
  icvs.num_threads = threads;
  opts.icvs = icvs;
  return Runtime(opts);
}

TEST(OmpApi, OutsideParallelDefaults) {
  EXPECT_EQ(omp_get_thread_num(), 0);
  EXPECT_EQ(omp_get_num_threads(), 1);
  EXPECT_FALSE(omp_in_parallel());
}

TEST(OmpApi, InsideParallelReflectsTeam) {
  Runtime rt = make_runtime(BackendKind::kNative, 4);
  std::mutex mu;
  std::set<int> nums;
  rt.parallel([&](ParallelContext&) {
    EXPECT_TRUE(omp_in_parallel());
    EXPECT_EQ(omp_get_num_threads(), 4);
    std::lock_guard lk(mu);
    nums.insert(omp_get_thread_num());
  });
  EXPECT_EQ(nums.size(), 4u);
  EXPECT_FALSE(omp_in_parallel());
}

TEST(OmpApi, MaxThreadsAndNumProcs) {
  Runtime rt = make_runtime(BackendKind::kNative, 6);
  EXPECT_EQ(omp_get_max_threads(rt), 6);
  EXPECT_EQ(omp_get_num_procs(rt), 24);
  omp_set_num_threads(rt, 12);
  EXPECT_EQ(omp_get_max_threads(rt), 12);
  omp_set_num_threads(rt, -3);
  EXPECT_EQ(omp_get_max_threads(rt), 1);
}

TEST(OmpApi, LevelTracksNesting) {
  EXPECT_EQ(omp_get_level(), 0);
  auto opts = [] {
    RuntimeOptions o;
    Icvs icvs;
    icvs.num_threads = 2;
    icvs.nested = true;
    o.icvs = icvs;
    return o;
  }();
  Runtime rt(opts);
  rt.parallel([&](ParallelContext& outer) {
    EXPECT_EQ(omp_get_level(), 1);
    EXPECT_EQ(outer.level(), 1u);
    rt.parallel([&](ParallelContext& inner) {
      EXPECT_EQ(omp_get_level(), 2);
      EXPECT_EQ(inner.level(), 2u);
    }, 2);
    EXPECT_EQ(omp_get_level(), 1);
  });
  EXPECT_EQ(omp_get_level(), 0);
}

TEST(OmpApi, WtimeMonotone) {
  double a = omp_get_wtime();
  double b = omp_get_wtime();
  EXPECT_GE(b, a);
}

class LockApiTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(LockApiTest, OmpLockMutualExclusion) {
  Runtime rt = make_runtime(GetParam(), 4);
  OmpLock lock(rt);
  long counter = 0;
  rt.parallel([&](ParallelContext&) {
    for (int i = 0; i < 1000; ++i) {
      lock.set();
      ++counter;
      lock.unset();
    }
  });
  EXPECT_EQ(counter, 4000);
}

TEST_P(LockApiTest, OmpLockTest) {
  Runtime rt = make_runtime(GetParam(), 2);
  OmpLock lock(rt);
  EXPECT_TRUE(lock.test());
  std::thread t([&] { EXPECT_FALSE(lock.test()); });
  t.join();
  lock.unset();
}

TEST_P(LockApiTest, NestLockReentry) {
  Runtime rt = make_runtime(GetParam(), 2);
  OmpNestLock lock(rt);
  lock.set();
  lock.set();
  lock.set();
  EXPECT_EQ(lock.depth(), 3);
  lock.unset();
  lock.unset();
  EXPECT_EQ(lock.depth(), 1);
  std::thread t([&] { EXPECT_EQ(lock.test(), 0); });
  t.join();
  lock.unset();
  EXPECT_EQ(lock.depth(), 0);
  std::thread t2([&] { EXPECT_EQ(lock.test(), 1); lock.unset(); });
  t2.join();
}

TEST_P(LockApiTest, NestLockTestCountsDepth) {
  Runtime rt = make_runtime(GetParam(), 2);
  OmpNestLock lock(rt);
  EXPECT_EQ(lock.test(), 1);
  EXPECT_EQ(lock.test(), 2);
  EXPECT_EQ(lock.test(), 3);
  lock.unset();
  lock.unset();
  lock.unset();
}

TEST_P(LockApiTest, NestLockAcrossThreadsExcludes) {
  Runtime rt = make_runtime(GetParam(), 4);
  OmpNestLock lock(rt);
  long counter = 0;
  rt.parallel([&](ParallelContext&) {
    for (int i = 0; i < 500; ++i) {
      lock.set();
      lock.set();  // nested re-entry on purpose
      ++counter;
      lock.unset();
      lock.unset();
    }
  });
  EXPECT_EQ(counter, 2000);
}

INSTANTIATE_TEST_SUITE_P(BothBackends, LockApiTest,
                         ::testing::Values(BackendKind::kNative,
                                           BackendKind::kMca),
                         [](const ::testing::TestParamInfo<BackendKind>& param_info) {
                           return std::string(to_string(param_info.param));
                         });

}  // namespace
}  // namespace ompmca::gomp
