// Concurrent masters: several application threads forking parallel regions
// through ONE runtime at the same time — the multi-tenant shape the
// multiplexed dispatcher exists for.  The old pool had a single team slab,
// one doorbell ticket and one join counter, so two simultaneous masters
// corrupted each other's fork state (caught only by a debug assert).  These
// tests pin the replacement contract: per-region dispatch slots, worker
// leases that partition the pool, bounded wait-then-degrade under pressure,
// and the telemetry that witnesses all of it.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "gomp/gomp.hpp"
#include "obs/telemetry.hpp"

namespace ompmca::gomp {
namespace {

Runtime make_runtime(BackendKind kind, unsigned threads) {
  RuntimeOptions opts;
  opts.backend = kind;
  Icvs icvs;
  icvs.num_threads = threads;
  opts.icvs = icvs;
  return Runtime(opts);
}

/// Bounded spin-yield; false on timeout (never hang a test on a lost wake).
template <typename Pred>
bool spin_until(Pred pred,
                std::chrono::seconds limit = std::chrono::seconds(60)) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

/// Sets an environment variable for the scope (the pool reads
/// OMPMCA_LEASE_WAIT_NS at construction).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;

 private:
  const char* name_;
};

class ConcurrentMastersTest : public ::testing::TestWithParam<BackendKind> {};

// The core exactly-once contract: with 4 masters forking bursts of regions
// concurrently, every region body runs once per team member with distinct
// thread nums — no cross-tenant slab corruption, no lost or double rings.
TEST_P(ConcurrentMastersTest, ExactlyOnceAcrossConcurrentMasters) {
  constexpr unsigned kMasters = 4;
  constexpr unsigned kRegions = 20;
  constexpr unsigned kWidth = 3;
  Runtime rt = make_runtime(GetParam(), kWidth);

  // Plenty of pool capacity (4 masters x 2 extras), so every team gets its
  // full width; pressure-driven degradation is exercised separately below.
  std::vector<std::atomic<unsigned>> runs(kMasters * kRegions);
  std::vector<std::atomic<unsigned>> tids(kMasters * kRegions);
  for (auto& r : runs) r.store(0);
  for (auto& t : tids) t.store(0);

  std::atomic<bool> go{false};
  std::vector<std::thread> masters;
  for (unsigned m = 0; m < kMasters; ++m) {
    masters.emplace_back([&, m] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (unsigned r = 0; r < kRegions; ++r) {
        rt.parallel(
            [&, m, r](ParallelContext& ctx) {
              EXPECT_EQ(ctx.num_threads(), kWidth);
              runs[m * kRegions + r].fetch_add(1);
              tids[m * kRegions + r].fetch_or(1u << ctx.thread_num());
            },
            kWidth);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (auto& t : masters) t.join();

  for (unsigned i = 0; i < kMasters * kRegions; ++i) {
    ASSERT_EQ(runs[i].load(), kWidth) << "region " << i;
    ASSERT_EQ(tids[i].load(), (1u << kWidth) - 1) << "region " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, ConcurrentMastersTest,
    ::testing::Values(BackendKind::kNative, BackendKind::kMca),
    [](const ::testing::TestParamInfo<BackendKind>& param_info) {
      return std::string(to_string(param_info.param));
    });

// A region dispatched while another master's is still in flight must be
// witnessed by gomp.team_multiplexed, and the doorbell wake-latency
// histogram (serverbench's latency source) must populate.
TEST(ConcurrentMasters, MultiplexedDispatchWitness) {
  obs::ScopedEnable telemetry;
  Runtime rt = make_runtime(BackendKind::kNative, 2);

  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::thread holder([&] {
    rt.parallel(
        [&](ParallelContext& ctx) {
          if (ctx.thread_num() == 0) {
            inside.store(true, std::memory_order_release);
            EXPECT_TRUE(spin_until(
                [&] { return release.load(std::memory_order_acquire); }));
          }
        },
        2);
  });
  ASSERT_TRUE(
      spin_until([&] { return inside.load(std::memory_order_acquire); }));

  // Three regions forked while the holder's region is pinned open: each
  // prepare() must observe an in-flight peer.
  std::atomic<int> count{0};
  for (int r = 0; r < 3; ++r) {
    rt.parallel([&](ParallelContext&) { count.fetch_add(1); }, 2);
  }
  release.store(true, std::memory_order_release);
  holder.join();

  EXPECT_EQ(count.load(), 6);
  obs::Snapshot s = obs::Registry::instance().snapshot();
  EXPECT_GE(s.counter(obs::Counter::kGompTeamMultiplexed), 3u);
  EXPECT_GT(s.hist(obs::Hist::kGompDoorbellWakeNs).count, 0u);
  // Capacity was never contended, so no lease may have degraded.
  EXPECT_EQ(s.counter(obs::Counter::kGompLeaseDegraded), 0u);
}

// When one tenant holds every pool worker, a second master must not block
// on the stranger's join: it degrades to the workers it can get (here:
// none) and completes while the first region is still open.
TEST(ConcurrentMasters, LeasePressureDegradesWidthNotBlocks) {
  ScopedEnv wait("OMPMCA_LEASE_WAIT_NS", "1000");
  obs::ScopedEnable telemetry;
  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = 5;
  opts.icvs = icvs;
  // 4 leasable workers: a width-5 team takes them all.
  opts.pool_max_workers = 4;
  Runtime rt(opts);

  std::atomic<bool> inside{false};
  std::atomic<bool> release{false};
  std::atomic<unsigned> holder_width{0};
  std::thread holder([&] {
    rt.parallel(
        [&](ParallelContext& ctx) {
          if (ctx.thread_num() == 0) {
            holder_width.store(ctx.num_threads());
            inside.store(true, std::memory_order_release);
            EXPECT_TRUE(spin_until(
                [&] { return release.load(std::memory_order_acquire); }));
          }
        },
        5);
  });
  ASSERT_TRUE(
      spin_until([&] { return inside.load(std::memory_order_acquire); }));

  std::atomic<unsigned> ran{0};
  std::atomic<unsigned> width{0};
  rt.parallel(
      [&](ParallelContext& ctx) {
        ran.fetch_add(1);
        if (ctx.thread_num() == 0) width.store(ctx.num_threads());
      },
      5);
  // Completing at all while the holder is pinned open IS the fix; the old
  // pool would have corrupted the shared slab or tripped its debug assert.
  EXPECT_FALSE(release.load());
  EXPECT_EQ(width.load(), 1u);
  EXPECT_EQ(ran.load(), 1u);

  release.store(true, std::memory_order_release);
  holder.join();
  EXPECT_EQ(holder_width.load(), 5u);

  obs::Snapshot s = obs::Registry::instance().snapshot();
  EXPECT_GE(s.counter(obs::Counter::kGompLeaseDegraded), 1u);
  EXPECT_GE(s.counter(obs::Counter::kGompTeamMultiplexed), 1u);
  EXPECT_GT(s.hist(obs::Hist::kGompLeaseWaitNs).count, 0u);
}

// Seeded lease-pressure partition: 4 masters x width-4 requests against a
// 4-worker pool, held simultaneously in flight by an in-body rendezvous.
// The leases must partition the pool (4 masters + 4 extras = 8 threads
// total), with the shortfall showing up as degraded, narrower teams —
// never as a blocked or deadlocked master.
TEST(ConcurrentMasters, SeededLeasePressurePartitionsThePool) {
  obs::ScopedEnable telemetry;
  constexpr unsigned kMasters = 4;
  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  opts.pool_max_workers = 4;
  Runtime rt(opts);

  std::atomic<unsigned> arrived{0};
  std::atomic<bool> bail{false};
  std::array<std::atomic<unsigned>, kMasters> widths;
  std::array<std::atomic<unsigned>, kMasters> runs;
  for (auto& w : widths) w.store(0);
  for (auto& r : runs) r.store(0);

  std::vector<std::thread> masters;
  for (unsigned m = 0; m < kMasters; ++m) {
    masters.emplace_back([&, m] {
      rt.parallel(
          [&, m](ParallelContext& ctx) {
            runs[m].fetch_add(1);
            if (ctx.thread_num() != 0) return;
            widths[m].store(ctx.num_threads());
            arrived.fetch_add(1);
            // Hold this region open until every master's region is in
            // flight at once — the maximum-pressure state.
            const bool all = spin_until([&] {
              return arrived.load() >= kMasters || bail.load();
            });
            if (!all) bail.store(true);
            EXPECT_TRUE(all);
          },
          4);
    });
  }
  for (auto& t : masters) t.join();
  ASSERT_FALSE(bail.load());

  unsigned total = 0;
  for (unsigned m = 0; m < kMasters; ++m) {
    // Exactly-once per granted width, even for the degraded teams.
    EXPECT_EQ(runs[m].load(), widths[m].load()) << "master " << m;
    EXPECT_GE(widths[m].load(), 1u);
    total += widths[m].load();
  }
  // All 4 workers leased somewhere, none double-leased: the 4 masters plus
  // the whole pool, whatever the per-master split.
  EXPECT_EQ(total, kMasters + 4);

  obs::Snapshot s = obs::Registry::instance().snapshot();
  // 4 extras cannot satisfy 4 masters wanting 3 each: at least two leases
  // came back short.
  EXPECT_GE(s.counter(obs::Counter::kGompLeaseDegraded), 2u);
  // All masters overlapped, so every prepare() but the first saw a peer.
  EXPECT_GE(s.counter(obs::Counter::kGompTeamMultiplexed), kMasters - 1);
  // The short leases waited out the bounded grace window first.
  EXPECT_GT(s.hist(obs::Hist::kGompLeaseWaitNs).count, 0u);
}

// One more master than dispatch slots: the overflow tenant serializes
// (width 1) instead of blocking on a stranger's region, and every other
// tenant keeps its full width.
TEST(ConcurrentMasters, SlotExhaustionSerializesTheOverflowTenant) {
  obs::ScopedEnable telemetry;
  constexpr unsigned kMasters = ThreadPool::kMaxSlots + 1;
  Runtime rt = make_runtime(BackendKind::kNative, 2);

  std::atomic<unsigned> arrived{0};
  std::atomic<bool> bail{false};
  std::array<std::atomic<unsigned>, kMasters> widths;
  std::array<std::atomic<unsigned>, kMasters> runs;
  for (auto& w : widths) w.store(0);
  for (auto& r : runs) r.store(0);

  std::vector<std::thread> masters;
  for (unsigned m = 0; m < kMasters; ++m) {
    masters.emplace_back([&, m] {
      rt.parallel(
          [&, m](ParallelContext& ctx) {
            runs[m].fetch_add(1);
            if (ctx.thread_num() != 0) return;
            widths[m].store(ctx.num_threads());
            arrived.fetch_add(1);
            const bool all = spin_until([&] {
              return arrived.load() >= kMasters || bail.load();
            });
            if (!all) bail.store(true);
            EXPECT_TRUE(all);
          },
          2);
    });
  }
  for (auto& t : masters) t.join();
  ASSERT_FALSE(bail.load());

  unsigned serialized = 0;
  for (unsigned m = 0; m < kMasters; ++m) {
    EXPECT_EQ(runs[m].load(), widths[m].load()) << "master " << m;
    if (widths[m].load() == 1) {
      ++serialized;
    } else {
      EXPECT_EQ(widths[m].load(), 2u) << "master " << m;
    }
  }
  // kMaxSlots regions held open leaves exactly one master without a slot.
  EXPECT_EQ(serialized, 1u);
  obs::Snapshot s = obs::Registry::instance().snapshot();
  EXPECT_GE(s.counter(obs::Counter::kGompLeaseDegraded), 1u);
}

}  // namespace
}  // namespace ompmca::gomp
