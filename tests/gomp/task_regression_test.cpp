// Seeded regressions of the explicit-task subsystem, written against the
// bugs the seed implementation shipped:
//
//  * spawn() enqueued work without notifying idle_cv_, so a thread parked
//    in taskwait/group_wait (queue momentarily empty, children executing
//    elsewhere) slept through newly spawned tasks until an unrelated
//    finished() fired — if the only running task itself depended on the
//    queued work, the team deadlocked with runnable tasks queued;
//  * ParallelContext::task attached children to the *spawning thread's*
//    taskgroup construct state, so a task spawned from inside a stolen
//    task escaped the taskgroup end wait (OpenMP requires descendants to
//    be included);
//  * run_one left the current-task slot and the executing/live-children
//    accounting corrupted when a task body threw.
//
// Each test fails (or hangs, caught by a bounded in-test timeout) on the
// seed implementation and passes on the fixed one.  The scenarios target
// the scheduler's contract — wakeup on new work, group membership across
// steals, exception safety — and hold for both the seed's central FIFO
// shape and the work-stealing deques that replaced it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "gomp/runtime.hpp"
#include "gomp/task.hpp"

namespace ompmca::gomp {
namespace {

using namespace std::chrono_literals;

/// Spins until @p pred or ~8 s elapse; true when the predicate fired.
/// Bounded so a lost-wakeup regression fails the test instead of wedging
/// the whole binary until the ctest timeout.
template <typename Pred>
bool spin_until(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + 8s;
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::yield();
  }
  return true;
}

// --- lost wakeup: spawn() must wake parked waiters ---------------------------
//
// Thread A spawns child C and blocks in taskwait (C executing on thread B,
// nothing queued -> A parks).  C then spawns grandchild G and busy-waits on
// G's side effect.  B is occupied by C, so only A can run G — and A only
// learns about G if the spawn wakes it.  On the seed FIFO, A slept until
// C's bounded busy-wait expired and the test failed; with the progress
// epoch (and the seed-era notify fix), A wakes on the spawn and the chain
// completes promptly.
TEST(TaskRegression, SpawnWakesParkedTaskwaitWaiter) {
  TaskSystem ts;
  ts.configure(2, nullptr);
  std::atomic<bool> child_started{false};
  std::atomic<bool> grandchild_ran{false};
  std::atomic<bool> chain_completed{false};

  Task* implicit_a = ts.make_implicit();
  Task* implicit_b = ts.make_implicit();

  std::thread waiter([&] {
    Task* cur = implicit_a;
    ts.spawn(0, cur, [&ts, &child_started, &grandchild_ran,
                      &chain_completed] {
      child_started.store(true);
      // Let the waiter observe the empty deques and park in taskwait
      // before the grandchild is spawned (the lost-wakeup window).
      std::this_thread::sleep_for(100ms);
      // The helper thread is inside *this* body, so the grandchild can
      // only run on the parked waiter.  Spawned from the helper: tid 1.
      ts.spawn(1, nullptr, [&grandchild_ran] {
        grandchild_ran.store(true);
      });
      if (spin_until([&] { return grandchild_ran.load(); })) {
        chain_completed.store(true);
      }
    });
    // Hand the child to the helper before waiting, so taskwait finds
    // nothing takeable and parks (the lost-wakeup window).
    while (!child_started.load()) std::this_thread::yield();
    ts.taskwait(0, &cur);
  });
  std::thread helper([&] {
    Task* cur = implicit_b;
    while (!child_started.load()) {
      if (!ts.run_one(1, &cur)) std::this_thread::yield();
    }
  });
  helper.join();
  waiter.join();
  EXPECT_TRUE(chain_completed.load())
      << "grandchild never ran: spawn() did not wake the parked taskwait";
  EXPECT_TRUE(grandchild_ran.load());
  implicit_a->release();
  implicit_b->release();
}

// Same window through group_wait: the waiter parks on the group, new work
// arrives, and only the waiter is free to run it.
TEST(TaskRegression, SpawnWakesParkedGroupWaitWaiter) {
  TaskSystem ts;
  ts.configure(2, nullptr);
  TaskGroup group;
  std::atomic<bool> child_started{false};
  std::atomic<bool> grandchild_ran{false};
  std::atomic<bool> chain_completed{false};

  Task* implicit_a = ts.make_implicit();
  Task* implicit_b = ts.make_implicit();

  std::thread waiter([&] {
    Task* cur = implicit_a;
    implicit_a->active_group = &group;  // children join the group
    ts.spawn(0, cur, [&ts, &child_started, &grandchild_ran,
                      &chain_completed] {
      child_started.store(true);
      std::this_thread::sleep_for(100ms);
      ts.spawn(1, nullptr, [&grandchild_ran] {
        grandchild_ran.store(true);
      });
      if (spin_until([&] { return grandchild_ran.load(); })) {
        chain_completed.store(true);
      }
    });
    implicit_a->active_group = nullptr;
    // Hand the group task to the helper, then park on the group.
    while (!child_started.load()) std::this_thread::yield();
    ts.group_wait(0, &group, &cur);
  });
  std::thread helper([&] {
    Task* cur = implicit_b;
    while (!child_started.load()) {
      if (!ts.run_one(1, &cur)) std::this_thread::yield();
    }
  });
  helper.join();
  waiter.join();
  EXPECT_TRUE(chain_completed.load())
      << "grandchild never ran: spawn() did not wake the parked group_wait";
  implicit_a->release();
  implicit_b->release();
}

// --- taskgroup must include descendants of stolen tasks ----------------------
//
// The taskgroup body spawns T and spins until T starts — which can only
// happen on the *other* thread (it reaches the implicit barrier and drains
// the queue).  T then spawns grandchild G.  On the seed, G was attached to
// the executing thread's (empty) construct state and escaped the group, so
// taskgroup end returned while G — deliberately slow — was still pending.
TEST(TaskRegression, TaskgroupWaitsForDescendantsOfStolenTasks) {
  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = 2;
  opts.icvs = icvs;
  Runtime rt(opts);

  std::atomic<bool> stolen_task_started{false};
  std::atomic<bool> grandchild_done{false};
  std::atomic<bool> group_waited_for_grandchild{false};

  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      ctx.taskgroup([&] {
        ctx.task([&] {
          stolen_task_started.store(true);
          // Spawned from the executing task's context (possibly another
          // thread's); must still land in the enclosing taskgroup.
          Runtime::current()->task([&] {
            std::this_thread::sleep_for(50ms);
            grandchild_done.store(true);
          });
        });
        // Keep this thread inside the body until the other thread picked
        // the task up, so the spawn above really happens "stolen".
        ASSERT_TRUE(spin_until([&] { return stolen_task_started.load(); }));
      });
      group_waited_for_grandchild.store(grandchild_done.load());
    });
  });
  EXPECT_TRUE(group_waited_for_grandchild.load())
      << "taskgroup end returned before a stolen task's child completed";
  EXPECT_TRUE(grandchild_done.load());
}

// --- run_one exception safety ------------------------------------------------

TEST(TaskRegression, ThrowingTaskRestoresSlotAndAccounting) {
  TaskSystem ts;
  Task* implicit = ts.make_implicit();
  Task* cur = implicit;

  ts.spawn(0, cur, [] { throw std::runtime_error("task body"); });
  EXPECT_THROW(ts.run_one(0, &cur), std::runtime_error);
  // The current-task slot is restored...
  EXPECT_EQ(cur, implicit);
  // ...the child was accounted finished (taskwait returns instead of
  // parking forever on live_children)...
  ts.taskwait(0, &cur);
  // ...and the executing count was restored (drain returns instead of
  // spinning on a phantom in-flight task).
  std::atomic<int> ran{0};
  ts.spawn(0, cur, [&] { ran.fetch_add(1); });
  ts.drain(0, &cur);
  EXPECT_EQ(ran.load(), 1);
  EXPECT_EQ(ts.queued(), 0u);
  implicit->release();
}

TEST(TaskRegression, ThrowingTaskInsideGroupReleasesGroup) {
  TaskSystem ts;
  TaskGroup group;
  Task* implicit = ts.make_implicit();
  Task* cur = implicit;
  implicit->active_group = &group;
  ts.spawn(0, cur, [] { throw std::runtime_error("boom"); });
  implicit->active_group = nullptr;
  EXPECT_THROW(ts.run_one(0, &cur), std::runtime_error);
  // The group count was restored; group_wait must return immediately.
  ts.group_wait(0, &group, &cur);
  implicit->release();
  SUCCEED();
}

// --- taskgroup-scope exception safety ----------------------------------------
//
// taskloop and ParallelContext::taskgroup used to open their implicit group
// by hand: set active_group, run the body / spawn loop, restore, group_wait.
// A body that threw skipped the restore AND the wait, leaving the task's
// active_group pointing into the destroyed stack frame while live chunk
// tasks still referenced it.  Both now go through TaskGroupScope, whose
// destructor restores the override, drains the group even while unwinding,
// and propagates the first failure exactly once on the normal path.

TEST(TaskRegression, TaskloopThrowingChunkDrainsAndRestoresGroup) {
  TaskSystem ts;
  Task* implicit = ts.make_implicit();
  Task* cur = implicit;

  std::atomic<int> chunks_entered{0};
  EXPECT_THROW(
      ts.taskloop(0, &cur, 0, 64, /*grain=*/8,
                  [&](long lo, long) {
                    chunks_entered.fetch_add(1);
                    if (lo == 16) throw std::runtime_error("chunk");
                  }),
      std::runtime_error);

  // Every chunk was driven to completion before taskloop returned — the
  // scope drained the implicit group instead of abandoning queued chunks.
  EXPECT_EQ(chunks_entered.load(), 8);
  EXPECT_EQ(ts.queued(), 0u);
  // The group override was restored, not left dangling into taskloop's
  // destroyed frame: a subsequent spawn must parent to the implicit task
  // (no group), and the system stays usable.
  EXPECT_EQ(implicit->active_group, nullptr);
  std::atomic<int> after{0};
  ts.spawn(0, cur, [&] { after.fetch_add(1); });
  ts.drain(0, &cur);
  EXPECT_EQ(after.load(), 1);
  implicit->release();
}

TEST(TaskRegression, TaskloopExceptionDoesNotLeakIntoEnclosingGroup) {
  TaskSystem ts;
  TaskGroup outer;
  Task* implicit = ts.make_implicit();
  Task* cur = implicit;

  implicit->active_group = &outer;
  EXPECT_THROW(ts.taskloop(0, &cur, 0, 4, /*grain=*/1,
                           [](long, long) { throw std::runtime_error("x"); }),
               std::runtime_error);
  // The enclosing group's override is back in place (saved/restored, not
  // reset to null), and the inner chunks were not charged against it.
  EXPECT_EQ(implicit->active_group, &outer);
  implicit->active_group = nullptr;
  ts.group_wait(0, &outer, &cur);
  implicit->release();
  SUCCEED();
}

TEST(TaskRegression, TaskgroupThrowingBodyWaitsForGroup) {
  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  Runtime rt(opts);
  std::atomic<int> done{0};
  std::atomic<bool> caught_with_stragglers{false};
  std::atomic<bool> second_group_ok{false};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      try {
        ctx.taskgroup([&] {
          for (int i = 0; i < 32; ++i) {
            ctx.task([&] {
              std::this_thread::sleep_for(1ms);
              done.fetch_add(1);
            });
          }
          throw std::runtime_error("body");
        });
      } catch (const std::runtime_error&) {
        // The scope must have waited the group out while unwinding; the
        // queued tasks reference the taskgroup frame being destroyed.
        if (done.load() != 32) caught_with_stragglers.store(true);
      }
      // The active-group override was restored: a fresh taskgroup still
      // scopes correctly instead of charging into the dead frame's group.
      std::atomic<int> inner{0};
      ctx.taskgroup([&] {
        for (int i = 0; i < 8; ++i) ctx.task([&] { inner.fetch_add(1); });
      });
      second_group_ok.store(inner.load() == 8);
    });
  });
  EXPECT_FALSE(caught_with_stragglers.load())
      << "taskgroup body threw and the scope returned before its tasks";
  EXPECT_EQ(done.load(), 32);
  EXPECT_TRUE(second_group_ok.load());
}

}  // namespace
}  // namespace ompmca::gomp
