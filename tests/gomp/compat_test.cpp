// The libGOMP-compatible C entry points: code written against the GOMP ABI
// (what a compiler emits for pragmas) must run unchanged on the shim —
// including the paper-style flip between runtimes.
#include "gomp/gomp_compat.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ompmca::gomp::compat {
namespace {

// GOMP outlined functions are C functions taking one data pointer.
struct CountArgs {
  std::atomic<int>* count;
};
void count_body(void* p) {
  auto* args = static_cast<CountArgs*>(p);
  args->count->fetch_add(1);
}

struct LoopArgs {
  std::vector<std::atomic<int>>* hits;
  long start, end, incr, chunk;
  bool dynamic;
};
void loop_body(void* p) {
  auto* args = static_cast<LoopArgs*>(p);
  long lo, hi;
  bool got = args->dynamic
                 ? GOMP_loop_dynamic_start(args->start, args->end, args->incr,
                                           args->chunk, &lo, &hi)
                 : GOMP_loop_static_start(args->start, args->end, args->incr,
                                          args->chunk, &lo, &hi);
  while (got) {
    for (long i = lo; i != hi; i += args->incr) {
      (*args->hits)[static_cast<std::size_t>((i - args->start) / args->incr)]
          .fetch_add(1);
    }
    got = args->dynamic ? GOMP_loop_dynamic_next(&lo, &hi)
                        : GOMP_loop_static_next(&lo, &hi);
  }
  GOMP_loop_end();
}

struct CriticalArgs {
  long* counter;
};
void critical_body(void* p) {
  auto* args = static_cast<CriticalArgs*>(p);
  for (int i = 0; i < 500; ++i) {
    GOMP_critical_start();
    ++*args->counter;
    GOMP_critical_end();
  }
}

struct ResetProbeArgs {
  std::atomic<int>* refused;
};
void reset_probe_body(void* p) {
  auto* args = static_cast<ResetProbeArgs*>(p);
  // From inside a region the teardown must refuse: destroying the runtime
  // here would free the pool out from under this very team.
  if (omp_get_thread_num() == 0 && !gomp_compat_reset()) {
    args->refused->fetch_add(1);
  }
  GOMP_barrier();
}

void single_and_barrier_body(void* p) {
  auto* hits = static_cast<std::atomic<int>*>(p);
  if (GOMP_single_start()) hits->fetch_add(1);
  GOMP_barrier();
  EXPECT_EQ(hits->load(), 1);
}

class CompatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    gomp_compat_reset();
    RuntimeOptions opts;
    Icvs icvs;
    icvs.num_threads = 4;
    opts.icvs = icvs;
    gomp_compat_configure(std::move(opts));
  }
  void TearDown() override { gomp_compat_reset(); }
};

TEST_F(CompatTest, ParallelRunsTeam) {
  std::atomic<int> count{0};
  CountArgs args{&count};
  GOMP_parallel(count_body, &args, 0);
  EXPECT_EQ(count.load(), 4);
  GOMP_parallel(count_body, &args, 2);
  EXPECT_EQ(count.load(), 6);
}

TEST_F(CompatTest, StaticLoopCoversRange) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h.store(0);
  LoopArgs args{&hits, 0, 100, 1, 0, /*dynamic=*/false};
  GOMP_parallel(loop_body, &args, 0);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(CompatTest, StaticChunkedLoopCoversRange) {
  std::vector<std::atomic<int>> hits(97);
  for (auto& h : hits) h.store(0);
  LoopArgs args{&hits, 0, 97, 1, 7, /*dynamic=*/false};
  GOMP_parallel(loop_body, &args, 0);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(CompatTest, DynamicLoopCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  LoopArgs args{&hits, 0, 1000, 1, 16, /*dynamic=*/true};
  GOMP_parallel(loop_body, &args, 0);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(CompatTest, StridedLoop) {
  // for (i = 10; i < 50; i += 4): 10 iterations.
  std::vector<std::atomic<int>> hits(10);
  for (auto& h : hits) h.store(0);
  LoopArgs args{&hits, 10, 50, 4, 0, /*dynamic=*/false};
  GOMP_parallel(loop_body, &args, 0);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(CompatTest, CriticalProtects) {
  long counter = 0;
  CriticalArgs args{&counter};
  GOMP_parallel(critical_body, &args, 0);
  EXPECT_EQ(counter, 4 * 500);
}

TEST_F(CompatTest, SingleAndBarrier) {
  std::atomic<int> hits{0};
  GOMP_parallel(single_and_barrier_body, &hits, 0);
  EXPECT_EQ(hits.load(), 1);
}

TEST_F(CompatTest, OmpQueryApi) {
  EXPECT_EQ(omp_get_max_threads(), 4);
  EXPECT_EQ(omp_get_num_procs(), 24);
  EXPECT_EQ(omp_in_parallel(), 0);
  omp_set_num_threads(6);
  EXPECT_EQ(omp_get_max_threads(), 6);
  double a = omp_get_wtime();
  EXPECT_GE(omp_get_wtime(), a);
}

TEST_F(CompatTest, ResetRefusesWhileARegionIsInFlight) {
  std::atomic<int> refused{0};
  ResetProbeArgs args{&refused};
  GOMP_parallel(reset_probe_body, &args, 0);
  EXPECT_EQ(refused.load(), 1);
  // Drained: the same call now succeeds.
  EXPECT_TRUE(gomp_compat_reset());
}

TEST(CompatBackendFlip, McaBackendViaConfigure) {
  gomp_compat_reset();
  RuntimeOptions opts;
  opts.backend = BackendKind::kMca;
  Icvs icvs;
  icvs.num_threads = 3;
  opts.icvs = icvs;
  gomp_compat_configure(std::move(opts));

  std::atomic<int> count{0};
  CountArgs args{&count};
  GOMP_parallel(count_body, &args, 0);
  EXPECT_EQ(count.load(), 3);
  EXPECT_EQ(gomp_compat_runtime().backend().name(), "mca");
  gomp_compat_reset();
}

}  // namespace
}  // namespace ompmca::gomp::compat
