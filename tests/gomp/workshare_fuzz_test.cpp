// Randomized worksharing torture: random (schedule, chunk, range, team)
// configurations, each checked for the exact-cover invariant under real
// concurrent execution.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "common/rng.hpp"
#include "gomp/runtime.hpp"

namespace ompmca::gomp {
namespace {

class WorkshareFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkshareFuzz, RandomLoopsCoverExactlyOnce) {
  Xoshiro256 rng(GetParam());

  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = 8;
  opts.icvs = icvs;
  Runtime rt(opts);

  for (int round = 0; round < 25; ++round) {
    const Schedule kind = static_cast<Schedule>(rng.next_below(4));  // no runtime
    const long chunk = static_cast<long>(rng.next_below(50));        // 0..49
    const long begin = static_cast<long>(rng.next_below(100)) - 50;
    const long count = 1 + static_cast<long>(rng.next_below(3000));
    const unsigned nthreads = 1 + static_cast<unsigned>(rng.next_below(8));
    const bool nowait = rng.next_double() < 0.3;

    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(count));
    for (auto& h : hits) h.store(0);

    rt.parallel(
        [&](ParallelContext& ctx) {
          ctx.for_loop(
              begin, begin + count,
              [&](long lo, long hi) {
                ASSERT_GE(lo, begin);
                ASSERT_LT(lo, hi);
                ASSERT_LE(hi, begin + count);
                for (long i = lo; i < hi; ++i) {
                  hits[static_cast<std::size_t>(i - begin)].fetch_add(1);
                }
              },
              ScheduleSpec{kind, chunk}, nowait);
        },
        nthreads);

    for (long i = 0; i < count; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "round " << round << " kind " << static_cast<int>(kind)
          << " chunk " << chunk << " count " << count << " threads "
          << nthreads << " iter " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkshareFuzz,
                         ::testing::Values(3, 17, 2015, 424242));

TEST(WorkshareFuzz, MixedSchedulesInOneRegion) {
  Xoshiro256 rng(555);
  RuntimeOptions opts;
  Icvs icvs;
  icvs.num_threads = 6;
  opts.icvs = icvs;
  Runtime rt(opts);

  const long n = 997;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
  for (auto& h : hits) h.store(0);
  const int kLoops = 9;

  // Pre-draw the schedule sequence: every thread must see the same one.
  std::vector<ScheduleSpec> specs;
  for (int l = 0; l < kLoops; ++l) {
    specs.push_back(ScheduleSpec{static_cast<Schedule>(rng.next_below(4)),
                                 static_cast<long>(1 + rng.next_below(20))});
  }

  rt.parallel([&](ParallelContext& ctx) {
    for (int l = 0; l < kLoops; ++l) {
      ctx.for_loop(
          0, n,
          [&](long lo, long hi) {
            for (long i = lo; i < hi; ++i) {
              hits[static_cast<std::size_t>(i)].fetch_add(1);
            }
          },
          specs[static_cast<std::size_t>(l)],
          /*nowait=*/l % 2 == 0);
    }
  });

  for (long i = 0; i < n; ++i) {
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), kLoops);
  }
}

}  // namespace
}  // namespace ompmca::gomp
