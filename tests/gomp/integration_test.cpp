// Cross-layer integration: the MCA runtime's observable MRAPI footprint —
// the paper's §5B wiring, checked end to end through the public MRAPI API.
#include <gtest/gtest.h>

#include <atomic>

#include "gomp/gomp.hpp"
#include "mrapi/database.hpp"

namespace ompmca::gomp {
namespace {

Runtime make_mca_runtime(unsigned threads, PoolMode mode) {
  RuntimeOptions opts;
  opts.backend = BackendKind::kMca;
  opts.pool_mode = mode;
  Icvs icvs;
  icvs.num_threads = threads;
  opts.icvs = icvs;
  return Runtime(opts);
}

std::size_t domain_node_count() {
  auto d = mrapi::Database::instance().find_domain(0);
  return d ? (*d)->node_count() : 0;
}

TEST(McaIntegration, PersistentPoolKeepsWorkerNodesRegistered) {
  std::size_t before = domain_node_count();
  {
    Runtime rt = make_mca_runtime(4, PoolMode::kPersistent);
    // +1: the runtime's master node.
    EXPECT_EQ(domain_node_count(), before + 1);
    rt.parallel([](ParallelContext&) {});
    // Pool workers were launched as MRAPI nodes and stay parked: +3.
    EXPECT_EQ(domain_node_count(), before + 4);
    rt.parallel([](ParallelContext&) {});
    EXPECT_EQ(domain_node_count(), before + 4);  // reused, not re-created
  }
  // Runtime destruction retires every node it registered.
  EXPECT_EQ(domain_node_count(), before);
}

TEST(McaIntegration, PerRegionModeRegistersAndRetiresPerRegion) {
  std::size_t before = domain_node_count();
  {
    Runtime rt = make_mca_runtime(4, PoolMode::kPerRegion);
    std::atomic<std::size_t> inside{0};
    rt.parallel([&](ParallelContext& ctx) {
      ctx.master([&] { inside.store(domain_node_count()); });
      ctx.barrier();
    });
    // During the region: master + 3 per-region worker nodes (§5B.1's
    // literal lifecycle).
    EXPECT_EQ(inside.load(), before + 4);
    // After the join the workers' nodes are finalized.
    EXPECT_EQ(domain_node_count(), before + 1);
  }
  EXPECT_EQ(domain_node_count(), before);
}

TEST(McaIntegration, RuntimeAllocationsAreInvisibleAfterTeardown) {
  auto d = mrapi::Database::instance().domain(0);
  ASSERT_TRUE(d.has_value());
  std::size_t arena_before = (*d)->arena().used();
  {
    Runtime rt = make_mca_runtime(4, PoolMode::kPersistent);
    long sink = 0;
    rt.parallel([&](ParallelContext& ctx) {
      ctx.critical([&] { ++sink; });  // forces an MRAPI mutex creation
    });
    EXPECT_EQ(sink, 4);
  }
  // gomp_malloc segments are heap-mode: the system arena is untouched, and
  // teardown released every key the runtime created.
  EXPECT_EQ((*d)->arena().used(), arena_before);
}

TEST(McaIntegration, MasterNodeUsableForApplicationResources) {
  Runtime rt = make_mca_runtime(2, PoolMode::kPersistent);
  auto* mca = dynamic_cast<McaBackend*>(&rt.backend());
  ASSERT_NE(mca, nullptr);
  // Applications can share the runtime's domain for their own MRAPI use.
  auto seg = mca->node().shmem_create_malloc(0x7777, 256);
  ASSERT_TRUE(seg.has_value());
  auto found = mca->node().shmem_get(0x7777);
  ASSERT_TRUE(found.has_value());
  (void)(*found)->detach(mca->node().node_id());
  EXPECT_EQ(mca->node().shmem_delete(0x7777), Status::kSuccess);
}

TEST(McaIntegration, MetadataDrivesDefaultTeamWidth) {
  ::unsetenv("OMP_NUM_THREADS");
  RuntimeOptions opts;
  opts.backend = BackendKind::kMca;
  Runtime rt(opts);
  // §5B.4: the MRAPI resource tree reports 24 HW threads on the modelled
  // board; the pool defaults to that.
  EXPECT_EQ(rt.max_threads(), 24u);
}

}  // namespace
}  // namespace ompmca::gomp
