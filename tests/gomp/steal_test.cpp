// Work-stealing loop-scheduler tests: exactly-once execution under
// randomized per-iteration stalls (steal-correctness) and the telemetry
// contract — steals happen under imbalance, not under balance.
#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <vector>

#include "gomp/gomp.hpp"
#include "obs/telemetry.hpp"

namespace ompmca::gomp {
namespace {

Runtime make_runtime(unsigned nthreads, BackendKind kind = BackendKind::kNative) {
  RuntimeOptions opts;
  opts.backend = kind;
  Icvs icvs;
  icvs.num_threads = nthreads;
  opts.icvs = icvs;
  return Runtime(opts);
}

void stall(unsigned iters) {
  volatile double sink = 0.0;
  for (unsigned i = 0; i < iters; ++i) sink = sink + i * 0.25;
}

// Every iteration of a stolen-from loop must run exactly once, no matter
// how unevenly the per-iteration work is distributed.
void run_exactly_once(Schedule kind, long chunk, unsigned nthreads,
                      BackendKind backend) {
  constexpr long kIters = 4096;
  constexpr int kRepeats = 8;
  Runtime rt = make_runtime(nthreads, backend);
  std::mt19937 rng(42);
  std::uniform_int_distribution<unsigned> stall_dist(0, 400);
  for (int rep = 0; rep < kRepeats; ++rep) {
    // Random stall per iteration, fixed before the loop so all threads see
    // the same cost surface (heavy tails force steals).
    std::vector<unsigned> cost(kIters);
    for (auto& c : cost) c = stall_dist(rng);
    std::vector<std::atomic<int>> hits(kIters);
    for (auto& h : hits) h.store(0, std::memory_order_relaxed);
    rt.parallel([&](ParallelContext& ctx) {
      ctx.for_loop(0, kIters,
                   [&](long lo, long hi) {
                     for (long i = lo; i < hi; ++i) {
                       stall(cost[static_cast<std::size_t>(i)]);
                       hits[static_cast<std::size_t>(i)].fetch_add(
                           1, std::memory_order_relaxed);
                     }
                   },
                   ScheduleSpec{kind, chunk});
    });
    for (long i = 0; i < kIters; ++i) {
      ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "iteration " << i << " rep " << rep;
    }
  }
}

TEST(StealScheduler, DynamicExactlyOnceUnderRandomStalls) {
  run_exactly_once(Schedule::kDynamic, 1, 8, BackendKind::kNative);
}

TEST(StealScheduler, DynamicChunkedExactlyOnceUnderRandomStalls) {
  run_exactly_once(Schedule::kDynamic, 7, 6, BackendKind::kNative);
}

TEST(StealScheduler, GuidedExactlyOnceUnderRandomStalls) {
  run_exactly_once(Schedule::kGuided, 1, 8, BackendKind::kNative);
}

TEST(StealScheduler, DynamicExactlyOnceOnMcaBackend) {
  run_exactly_once(Schedule::kDynamic, 1, 4, BackendKind::kMca);
}

// Telemetry contract, deterministic form: the LoopInstance is driven
// directly (as workshare_test does), so thread interleaving cannot blur
// the balanced/imbalanced distinction.

// Imbalance: a 4-wide loop where only thread 3 pulls chunks — it drains
// its own range, then must steal everything else.  With the cluster map
// {0,0,1,1} its first victims are same-cluster, then cross-cluster.
TEST(StealScheduler, StealsOccurUnderImbalance) {
  obs::ScopedEnable telemetry;
  static const unsigned kClusters[4] = {0, 0, 1, 1};
  LoopInstance loop;
  loop.enter(0, 0, 256, ScheduleSpec{Schedule::kDynamic, 1}, 4, kClusters);
  ASSERT_TRUE(loop.distributed());
  long pos = 0, lo = 0, hi = 0;
  std::vector<int> hits(256, 0);
  while (loop.next_chunk(3, &pos, &lo, &hi)) {
    for (long i = lo; i < hi; ++i) ++hits[static_cast<std::size_t>(i)];
  }
  for (int h : hits) EXPECT_EQ(h, 1);
  for (unsigned t = 0; t < 4; ++t) loop.leave();

  obs::Snapshot s = obs::Registry::instance().snapshot();
  EXPECT_GT(s.counter(obs::Counter::kGompLoopSteal), 0u);
  EXPECT_GE(s.counter(obs::Counter::kGompLoopStealAttempt),
            s.counter(obs::Counter::kGompLoopSteal));
  // Every steal is classified by victim distance, and thread 3 had both a
  // same-cluster victim (thread 2) and cross-cluster ones (threads 0, 1).
  EXPECT_GT(s.counter(obs::Counter::kGompLoopStealLocal), 0u);
  EXPECT_GT(s.counter(obs::Counter::kGompLoopStealRemote), 0u);
  EXPECT_EQ(s.counter(obs::Counter::kGompLoopStealLocal) +
                s.counter(obs::Counter::kGompLoopStealRemote),
            s.counter(obs::Counter::kGompLoopSteal));
}

// Balance: claims interleaved round-robin, each thread's share exactly its
// pre-sliced range — nobody ever finds an empty own-range while work
// remains, so no steal is ever attempted.
TEST(StealScheduler, NoStealsUnderPerfectBalance) {
  obs::ScopedEnable telemetry;
  constexpr unsigned kThreads = 4;
  constexpr long kIters = 64;  // 16 per thread
  LoopInstance loop;
  loop.enter(0, 0, kIters, ScheduleSpec{Schedule::kDynamic, 1}, kThreads);
  ASSERT_TRUE(loop.distributed());
  long pos[kThreads] = {}, lo = 0, hi = 0;
  long claimed = 0;
  for (long round = 0; round < kIters / kThreads; ++round) {
    for (unsigned t = 0; t < kThreads; ++t) {
      ASSERT_TRUE(loop.next_chunk(t, &pos[t], &lo, &hi));
      claimed += hi - lo;
    }
  }
  EXPECT_EQ(claimed, kIters);
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_FALSE(loop.next_chunk(t, &pos[t], &lo, &hi));
    loop.leave();
  }
  obs::Snapshot s = obs::Registry::instance().snapshot();
  EXPECT_EQ(s.counter(obs::Counter::kGompLoopSteal), 0u);
}

// The doorbell dispatch records a wakeup-latency histogram entry per woken
// worker (the telemetry the EPCC artifacts embed).
TEST(StealScheduler, DoorbellWakeTelemetryRecorded) {
  constexpr unsigned kThreads = 4;
  Runtime rt = make_runtime(kThreads);
  obs::ScopedEnable telemetry;
  rt.parallel([](ParallelContext&) { stall(10); });
  obs::Snapshot s = obs::Registry::instance().snapshot();
  EXPECT_EQ(s.hist(obs::Hist::kGompDoorbellWakeNs).count, kThreads - 1);
  EXPECT_EQ(s.counter(obs::Counter::kGompPoolDispatch), kThreads - 1);
}

}  // namespace
}  // namespace ompmca::gomp
