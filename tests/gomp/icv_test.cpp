#include "gomp/icv.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ompmca::gomp {
namespace {

class IcvEnvTest : public ::testing::Test {
 protected:
  void set(const char* name, const char* value) {
    ::setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const char* n : names_) ::unsetenv(n);
  }
  std::vector<const char*> names_;
};

TEST_F(IcvEnvTest, DefaultsFromProcessorCount) {
  Icvs icvs = Icvs::from_env(24);
  EXPECT_EQ(icvs.num_threads, 24u);
  EXPECT_FALSE(icvs.dynamic_threads);
  EXPECT_FALSE(icvs.nested);
  EXPECT_EQ(icvs.wait_policy, WaitPolicy::kPassive);
}

TEST_F(IcvEnvTest, OmpNumThreadsWins) {
  set("OMP_NUM_THREADS", "6");
  EXPECT_EQ(Icvs::from_env(24).num_threads, 6u);
}

TEST_F(IcvEnvTest, InvalidNumThreadsIgnored) {
  set("OMP_NUM_THREADS", "0");
  EXPECT_EQ(Icvs::from_env(24).num_threads, 24u);
  set("OMP_NUM_THREADS", "abc");
  EXPECT_EQ(Icvs::from_env(24).num_threads, 24u);
}

TEST_F(IcvEnvTest, DynamicAndNested) {
  set("OMP_DYNAMIC", "true");
  set("OMP_NESTED", "1");
  Icvs icvs = Icvs::from_env(4);
  EXPECT_TRUE(icvs.dynamic_threads);
  EXPECT_TRUE(icvs.nested);
  EXPECT_GT(icvs.max_active_levels, 1u);
}

TEST_F(IcvEnvTest, ScheduleParsed) {
  set("OMP_SCHEDULE", "guided,4");
  Icvs icvs = Icvs::from_env(4);
  EXPECT_EQ(icvs.run_schedule.kind, Schedule::kGuided);
  EXPECT_EQ(icvs.run_schedule.chunk, 4);
}

TEST_F(IcvEnvTest, WaitPolicyActive) {
  set("OMP_WAIT_POLICY", "ACTIVE");
  EXPECT_EQ(Icvs::from_env(4).wait_policy, WaitPolicy::kActive);
}

TEST_F(IcvEnvTest, ThreadLimitClampsNumThreads) {
  set("OMP_NUM_THREADS", "64");
  set("OMP_THREAD_LIMIT", "16");
  Icvs icvs = Icvs::from_env(4);
  EXPECT_EQ(icvs.thread_limit, 16u);
  EXPECT_EQ(icvs.num_threads, 16u);
}

TEST(ScheduleParse, AllKinds) {
  ScheduleSpec spec;
  ASSERT_TRUE(parse_schedule("static", &spec));
  EXPECT_EQ(spec.kind, Schedule::kStatic);
  EXPECT_EQ(spec.chunk, 0);
  ASSERT_TRUE(parse_schedule("dynamic", &spec));
  EXPECT_EQ(spec.kind, Schedule::kDynamic);
  EXPECT_EQ(spec.chunk, 1);  // default chunk for dynamic
  ASSERT_TRUE(parse_schedule("GUIDED , 8", &spec));
  EXPECT_EQ(spec.kind, Schedule::kGuided);
  EXPECT_EQ(spec.chunk, 8);
  ASSERT_TRUE(parse_schedule("auto", &spec));
  EXPECT_EQ(spec.kind, Schedule::kAuto);
}

TEST(ScheduleParse, Malformed) {
  ScheduleSpec spec;
  EXPECT_FALSE(parse_schedule("", &spec));
  EXPECT_FALSE(parse_schedule("bogus", &spec));
  EXPECT_FALSE(parse_schedule("static,0", &spec));
  EXPECT_FALSE(parse_schedule("static,-3", &spec));
  EXPECT_FALSE(parse_schedule("static,4,5", &spec));
  EXPECT_FALSE(parse_schedule("static,x", &spec));
}

TEST(ScheduleNames, ToString) {
  EXPECT_EQ(to_string(Schedule::kStatic), "static");
  EXPECT_EQ(to_string(Schedule::kGuided), "guided");
  EXPECT_EQ(to_string(Schedule::kRuntime), "runtime");
}

}  // namespace
}  // namespace ompmca::gomp
