#include "gomp/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ompmca::gomp {
namespace {

struct BarrierCase {
  BarrierKind kind;
  WaitPolicy policy;
  unsigned nthreads;
};

class BarrierParamTest : public ::testing::TestWithParam<BarrierCase> {};

// The fundamental barrier property: no thread observes phase k+1 work
// before every thread finished phase k.
TEST_P(BarrierParamTest, SeparatesPhases) {
  const BarrierCase c = GetParam();
  auto barrier = make_barrier(c.kind, c.nthreads, c.policy);
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->size(), c.nthreads);

  constexpr int kPhases = 25;
  std::atomic<int> arrivals{0};
  std::atomic<bool> violation{false};

  auto worker = [&](unsigned tid) {
    for (int phase = 0; phase < kPhases; ++phase) {
      arrivals.fetch_add(1, std::memory_order_acq_rel);
      barrier->arrive_and_wait(tid);
      // After the barrier every thread of this phase must have arrived.
      if (arrivals.load(std::memory_order_acquire) <
          (phase + 1) * static_cast<int>(c.nthreads)) {
        violation.store(true);
      }
      barrier->arrive_and_wait(tid);  // separate the read from next phase
    }
  };

  std::vector<std::thread> threads;
  for (unsigned t = 1; t < c.nthreads; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(violation.load());
  EXPECT_EQ(arrivals.load(), kPhases * static_cast<int>(c.nthreads));
}

std::vector<BarrierCase> all_cases() {
  std::vector<BarrierCase> cases;
  for (BarrierKind kind : {BarrierKind::kCentral, BarrierKind::kTree,
                           BarrierKind::kDissemination}) {
    for (WaitPolicy policy : {WaitPolicy::kPassive, WaitPolicy::kActive}) {
      for (unsigned n : {1u, 2u, 3u, 4u, 7u, 8u, 13u, 24u}) {
        cases.push_back({kind, policy, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BarrierParamTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<BarrierCase>& param_info) {
      const auto& c = param_info.param;
      return std::string(to_string(c.kind)) + "_" +
             (c.policy == WaitPolicy::kPassive ? "passive" : "active") + "_" +
             std::to_string(c.nthreads);
    });

TEST(Barrier, SingleThreadIsNoOp) {
  for (BarrierKind kind : {BarrierKind::kCentral, BarrierKind::kTree,
                           BarrierKind::kDissemination}) {
    auto b = make_barrier(kind, 1, WaitPolicy::kPassive);
    for (int i = 0; i < 100; ++i) b->arrive_and_wait(0);  // must not hang
  }
}

TEST(Barrier, KindNames) {
  EXPECT_EQ(to_string(BarrierKind::kCentral), "central");
  EXPECT_EQ(to_string(BarrierKind::kTree), "tree");
  EXPECT_EQ(to_string(BarrierKind::kDissemination), "dissemination");
}

TEST(TreeBarrier, ArityMatchesClusterWidth) {
  EXPECT_EQ(TreeBarrier::kArity, 4u);
}

// Dissemination is inherently flag-spinning; a passive-policy request must
// get a blockable algorithm (the tree barrier) instead of a silent spin.
TEST(Barrier, PassiveDisseminationFallsBackToTree) {
  EXPECT_EQ(
      effective_barrier_kind(BarrierKind::kDissemination, WaitPolicy::kPassive),
      BarrierKind::kTree);
  EXPECT_EQ(
      effective_barrier_kind(BarrierKind::kDissemination, WaitPolicy::kActive),
      BarrierKind::kDissemination);
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kCentral, WaitPolicy::kPassive),
            BarrierKind::kCentral);

  auto passive =
      make_barrier(BarrierKind::kDissemination, 4, WaitPolicy::kPassive);
  EXPECT_NE(dynamic_cast<TreeBarrier*>(passive.get()), nullptr);
  auto active =
      make_barrier(BarrierKind::kDissemination, 4, WaitPolicy::kActive);
  EXPECT_NE(dynamic_cast<DisseminationBarrier*>(active.get()), nullptr);
}

}  // namespace
}  // namespace ompmca::gomp
