#include "gomp/barrier.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <new>
#include <thread>
#include <vector>

namespace ompmca::gomp {
namespace {

struct BarrierCase {
  BarrierKind kind;
  WaitPolicy policy;
  unsigned nthreads;
};

class BarrierParamTest : public ::testing::TestWithParam<BarrierCase> {};

// The fundamental barrier property: no thread observes phase k+1 work
// before every thread finished phase k.
TEST_P(BarrierParamTest, SeparatesPhases) {
  const BarrierCase c = GetParam();
  // T4240-shaped scatter map: threads round-robin over three clusters.  The
  // flat kinds ignore it; the hierarchical kind derives its two tiers from
  // it (and collapses to a tree when the map spans a single cluster).
  std::vector<unsigned> cluster_of_thread(c.nthreads);
  for (unsigned i = 0; i < c.nthreads; ++i) cluster_of_thread[i] = i % 3;
  auto barrier =
      make_barrier(c.kind, c.nthreads, c.policy, cluster_of_thread.data());
  ASSERT_NE(barrier, nullptr);
  EXPECT_EQ(barrier->size(), c.nthreads);

  constexpr int kPhases = 25;
  std::atomic<int> arrivals{0};
  std::atomic<bool> violation{false};

  auto worker = [&](unsigned tid) {
    for (int phase = 0; phase < kPhases; ++phase) {
      arrivals.fetch_add(1, std::memory_order_acq_rel);
      barrier->arrive_and_wait(tid);
      // After the barrier every thread of this phase must have arrived.
      if (arrivals.load(std::memory_order_acquire) <
          (phase + 1) * static_cast<int>(c.nthreads)) {
        violation.store(true);
      }
      barrier->arrive_and_wait(tid);  // separate the read from next phase
    }
  };

  std::vector<std::thread> threads;
  for (unsigned t = 1; t < c.nthreads; ++t) threads.emplace_back(worker, t);
  worker(0);
  for (auto& t : threads) t.join();

  EXPECT_FALSE(violation.load());
  EXPECT_EQ(arrivals.load(), kPhases * static_cast<int>(c.nthreads));
}

std::vector<BarrierCase> all_cases() {
  std::vector<BarrierCase> cases;
  for (BarrierKind kind :
       {BarrierKind::kCentral, BarrierKind::kTree, BarrierKind::kDissemination,
        BarrierKind::kHierarchical}) {
    for (WaitPolicy policy : {WaitPolicy::kPassive, WaitPolicy::kActive}) {
      for (unsigned n : {1u, 2u, 3u, 4u, 7u, 8u, 13u, 24u}) {
        cases.push_back({kind, policy, n});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BarrierParamTest, ::testing::ValuesIn(all_cases()),
    [](const ::testing::TestParamInfo<BarrierCase>& param_info) {
      const auto& c = param_info.param;
      return std::string(to_string(c.kind)) + "_" +
             (c.policy == WaitPolicy::kPassive ? "passive" : "active") + "_" +
             std::to_string(c.nthreads);
    });

TEST(Barrier, SingleThreadIsNoOp) {
  for (BarrierKind kind :
       {BarrierKind::kCentral, BarrierKind::kTree, BarrierKind::kDissemination,
        BarrierKind::kHierarchical}) {
    auto b = make_barrier(kind, 1, WaitPolicy::kPassive);
    for (int i = 0; i < 100; ++i) b->arrive_and_wait(0);  // must not hang
  }
}

TEST(Barrier, KindNames) {
  EXPECT_EQ(to_string(BarrierKind::kCentral), "central");
  EXPECT_EQ(to_string(BarrierKind::kTree), "tree");
  EXPECT_EQ(to_string(BarrierKind::kDissemination), "dissemination");
  EXPECT_EQ(to_string(BarrierKind::kHierarchical), "hierarchical");
  EXPECT_EQ(to_string(BarrierKind::kAuto), "auto");
}

TEST(Barrier, ParseKindRoundTrips) {
  BarrierKind k;
  ASSERT_TRUE(parse_barrier_kind("central", &k));
  EXPECT_EQ(k, BarrierKind::kCentral);
  ASSERT_TRUE(parse_barrier_kind("tree", &k));
  EXPECT_EQ(k, BarrierKind::kTree);
  ASSERT_TRUE(parse_barrier_kind("dissemination", &k));
  EXPECT_EQ(k, BarrierKind::kDissemination);
  ASSERT_TRUE(parse_barrier_kind("hier", &k));
  EXPECT_EQ(k, BarrierKind::kHierarchical);
  ASSERT_TRUE(parse_barrier_kind("hierarchical", &k));
  EXPECT_EQ(k, BarrierKind::kHierarchical);
  ASSERT_TRUE(parse_barrier_kind("auto", &k));
  EXPECT_EQ(k, BarrierKind::kAuto);
  EXPECT_FALSE(parse_barrier_kind("bogus", &k));
  EXPECT_FALSE(parse_barrier_kind("", &k));
}

TEST(TreeBarrier, ArityMatchesClusterWidth) {
  EXPECT_EQ(TreeBarrier::kArity, 4u);
}

// Dissemination is inherently flag-spinning; a passive-policy request must
// get a blockable algorithm (the tree barrier) instead of a silent spin.
TEST(Barrier, PassiveDisseminationFallsBackToTree) {
  EXPECT_EQ(
      effective_barrier_kind(BarrierKind::kDissemination, WaitPolicy::kPassive),
      BarrierKind::kTree);
  EXPECT_EQ(
      effective_barrier_kind(BarrierKind::kDissemination, WaitPolicy::kActive),
      BarrierKind::kDissemination);
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kCentral, WaitPolicy::kPassive),
            BarrierKind::kCentral);

  auto passive =
      make_barrier(BarrierKind::kDissemination, 4, WaitPolicy::kPassive);
  EXPECT_NE(dynamic_cast<TreeBarrier*>(passive.get()), nullptr);
  auto active =
      make_barrier(BarrierKind::kDissemination, 4, WaitPolicy::kActive);
  EXPECT_NE(dynamic_cast<DisseminationBarrier*>(active.get()), nullptr);
}

// kAuto is a request-only value: it resolves to hierarchical exactly when
// the team spans more than one cluster, and never survives resolution.
TEST(Barrier, AutoResolvesByClusterSpan) {
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kAuto, WaitPolicy::kPassive, 3),
            BarrierKind::kHierarchical);
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kAuto, WaitPolicy::kActive, 2),
            BarrierKind::kHierarchical);
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kAuto, WaitPolicy::kPassive, 1),
            BarrierKind::kCentral);
  // The 2-arg convenience overload assumes a single cluster.
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kAuto, WaitPolicy::kActive),
            BarrierKind::kCentral);
}

// A hierarchical request on a single-cluster team (e.g. Topology::generic()
// places everything in cluster 0) must collapse to the flat tree: two tiers
// with a top width of one would be pure overhead.
TEST(Barrier, HierarchicalCollapsesToTreeOnSingleCluster) {
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kHierarchical,
                                   WaitPolicy::kPassive, 1),
            BarrierKind::kTree);
  EXPECT_EQ(effective_barrier_kind(BarrierKind::kHierarchical,
                                   WaitPolicy::kActive, 2),
            BarrierKind::kHierarchical);

  const std::vector<unsigned> one_cluster(8, 5u);  // all on hw cluster 5
  auto collapsed = make_barrier(BarrierKind::kHierarchical, 8,
                                WaitPolicy::kPassive, one_cluster.data());
  EXPECT_NE(dynamic_cast<TreeBarrier*>(collapsed.get()), nullptr);

  // nullptr map means "single cluster" by contract.
  auto no_map =
      make_barrier(BarrierKind::kHierarchical, 8, WaitPolicy::kPassive);
  EXPECT_NE(dynamic_cast<TreeBarrier*>(no_map.get()), nullptr);

  const std::vector<unsigned> two_clusters{0, 1, 0, 1};
  auto real = make_barrier(BarrierKind::kHierarchical, 4, WaitPolicy::kPassive,
                           two_clusters.data());
  EXPECT_NE(dynamic_cast<HierarchicalBarrier*>(real.get()), nullptr);
}

TEST(HierarchicalBarrier, GroupCountMatchesOccupiedClusters) {
  // 24-thread T4240 scatter placement: 3 clusters, 8 threads each.
  std::vector<unsigned> map(24);
  for (unsigned i = 0; i < 24; ++i) map[i] = i % 3;
  HierarchicalBarrier b(24, WaitPolicy::kPassive, map.data());
  EXPECT_EQ(b.size(), 24u);
  EXPECT_EQ(b.num_cluster_groups(), 3u);

  // Uneven occupancy: clusters {7, 2} — top tier width 2, not max-id+1.
  const std::vector<unsigned> sparse{7, 2, 7, 7};
  HierarchicalBarrier s(4, WaitPolicy::kActive, sparse.data());
  EXPECT_EQ(s.num_cluster_groups(), 2u);
}

// A counting ClusterMemory: hands out heap blocks but records which cluster
// each acquire/release was attributed to.
class RecordingClusterMemory final : public ClusterMemory {
 public:
  void* acquire(unsigned cluster, std::size_t bytes) override {
    acquires.push_back(cluster);
    return ::operator new(bytes, std::align_val_t{kCacheLineBytes});
  }
  void release(unsigned cluster, void* p) override {
    releases.push_back(cluster);
    ::operator delete(p, std::align_val_t{kCacheLineBytes});
  }
  std::vector<unsigned> acquires;
  std::vector<unsigned> releases;
};

TEST(HierarchicalBarrier, HomesTierStatePerCluster) {
  RecordingClusterMemory mem;
  const std::vector<unsigned> map{0, 1, 2, 0, 1, 2};
  {
    HierarchicalBarrier b(6, WaitPolicy::kPassive, map.data(), &mem);
    // One tier allocation per occupied cluster, attributed to that cluster.
    ASSERT_EQ(mem.acquires.size(), 3u);
    EXPECT_EQ(mem.acquires, (std::vector<unsigned>{0, 1, 2}));
    EXPECT_TRUE(mem.releases.empty());

    // The barrier still works with externally homed state.
    std::vector<std::thread> threads;
    std::atomic<int> after{0};
    for (unsigned t = 1; t < 6; ++t) {
      threads.emplace_back([&, t] {
        b.arrive_and_wait(t);
        after.fetch_add(1);
      });
    }
    b.arrive_and_wait(0);
    after.fetch_add(1);
    for (auto& th : threads) th.join();
    EXPECT_EQ(after.load(), 6);
  }
  // Destruction releases every acquired block back to its cluster.
  EXPECT_EQ(mem.releases, mem.acquires);
}

}  // namespace
}  // namespace ompmca::gomp
