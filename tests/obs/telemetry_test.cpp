// Telemetry subsystem unit tests: counter/histogram mechanics, the
// disabled-mode no-op guarantee, JSON shape, and end-to-end counts from a
// real runtime driving real directives.
#include "obs/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gomp/gomp.hpp"
#include "mrapi/mutex.hpp"

namespace ompmca::obs {
namespace {

TEST(Telemetry, DisabledHooksRecordNothing) {
  Registry::instance().reset();
  set_enabled(false);
  count(Counter::kGompParallel, 5);
  record(Hist::kGompParallelNs, 1234);
  gauge_max(Gauge::kGompTaskQueueDepthHwm, 42);
  placement(1, 3);
  { ScopedTimer t(Hist::kGompForNs); }
  Snapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.counter(Counter::kGompParallel), 0u);
  EXPECT_EQ(s.hist(Hist::kGompParallelNs).count, 0u);
  EXPECT_EQ(s.hist(Hist::kGompForNs).count, 0u);
  EXPECT_EQ(s.gauge(Gauge::kGompTaskQueueDepthHwm), 0u);
  EXPECT_EQ(s.placements[1], 0u);
}

TEST(Telemetry, CountersAccumulateAcrossThreads) {
  ScopedEnable scope;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) count(Counter::kMrapiMutexAcquire);
    });
  }
  for (auto& t : threads) t.join();
  Snapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.counter(Counter::kMrapiMutexAcquire), 4000u);
  EXPECT_GE(s.threads_observed, 4u);
}

TEST(Telemetry, HistogramBucketsArePowersOfTwo) {
  ScopedEnable scope;
  // Bucket b >= 1 covers [2^(b-1), 2^b); bucket 0 holds zero samples.
  record(Hist::kGompBarrierWaitCentralNs, 0);     // bucket 0
  record(Hist::kGompBarrierWaitCentralNs, 1);     // bucket 1: [1, 2)
  record(Hist::kGompBarrierWaitCentralNs, 2);     // bucket 2: [2, 4)
  record(Hist::kGompBarrierWaitCentralNs, 3);     // bucket 2
  record(Hist::kGompBarrierWaitCentralNs, 1024);  // bucket 11: [1024, 2048)
  record(Hist::kGompBarrierWaitCentralNs, 2047);  // bucket 11
  Snapshot s = Registry::instance().snapshot();
  const HistogramData& h = s.hist(Hist::kGompBarrierWaitCentralNs);
  EXPECT_EQ(h.count, 6u);
  EXPECT_EQ(h.sum_ns, 0u + 1 + 2 + 3 + 1024 + 2047);
  EXPECT_EQ(h.max_ns, 2047u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[2], 2u);
  EXPECT_EQ(h.buckets[11], 2u);
  EXPECT_EQ(HistogramData::bucket_upper_ns(0), 1u);
  EXPECT_EQ(HistogramData::bucket_upper_ns(11), 2048u);
}

TEST(Telemetry, QuantileOfEmptyHistogramIsZero) {
  HistogramData h;
  EXPECT_EQ(h.quantile(0.5), 0.0);
  EXPECT_EQ(h.quantile(0.99), 0.0);
}

TEST(Telemetry, QuantileStaysInsideTheOccupiedBucket) {
  // All samples in bucket 11 ([1024, 2048)): every quantile must land in
  // that bucket's range, clamped to the recorded max.
  HistogramData h;
  for (int i = 0; i < 100; ++i) h.record(1500);
  for (double q : {0.0, 0.25, 0.5, 0.95, 0.99, 1.0}) {
    EXPECT_GE(h.quantile(q), 1024.0) << q;
    EXPECT_LE(h.quantile(q), 1500.0) << q;  // clamped to max_ns
  }
}

TEST(Telemetry, QuantileIsMonotonicAcrossBuckets) {
  HistogramData h;
  for (int i = 0; i < 90; ++i) h.record(100);     // bucket 7: [64, 128)
  for (int i = 0; i < 9; ++i) h.record(10'000);   // bucket 14
  h.record(1'000'000);                            // bucket 20
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p999 = h.quantile(0.999);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p999);
  // Rank math: p50 inside the 100ns bucket, p95 in the 10µs one, p99.9 at
  // the tail (clamped to the exact max).
  EXPECT_GE(p50, 64.0);
  EXPECT_LT(p50, 128.0);
  EXPECT_GE(p95, 8192.0);
  EXPECT_LE(p95, 16384.0);
  EXPECT_GT(p999, 16384.0);
  EXPECT_LE(p999, 1'000'000.0);
  // Out-of-range q is clamped, not UB.
  EXPECT_LE(h.quantile(2.0), 1'000'000.0);
  EXPECT_GE(h.quantile(-1.0), 0.0);
}

TEST(Telemetry, HistogramMergeAccumulatesBucketwise) {
  HistogramData a;
  HistogramData b;
  a.record(100);
  a.record(200);
  b.record(100);
  b.record(50'000);
  a += b;
  EXPECT_EQ(a.count, 4u);
  EXPECT_EQ(a.sum_ns, 100u + 200 + 100 + 50'000);
  EXPECT_EQ(a.max_ns, 50'000u);
  EXPECT_EQ(a.buckets[HistogramData::bucket_of(100)], 2u);
}

TEST(Telemetry, GaugeKeepsHighWaterMark) {
  ScopedEnable scope;
  gauge_max(Gauge::kMrapiArenaBytesInUseHwm, 100);
  gauge_max(Gauge::kMrapiArenaBytesInUseHwm, 500);
  gauge_max(Gauge::kMrapiArenaBytesInUseHwm, 300);
  Snapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.gauge(Gauge::kMrapiArenaBytesInUseHwm), 500u);
}

TEST(Telemetry, ScopedTimerRecordsPlausibleDuration) {
  ScopedEnable scope;
  {
    ScopedTimer t(Hist::kMrapiArenaAllocateNs);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  Snapshot s = Registry::instance().snapshot();
  const HistogramData& h = s.hist(Hist::kMrapiArenaAllocateNs);
  ASSERT_EQ(h.count, 1u);
  EXPECT_GE(h.sum_ns, 2'000'000u);  // at least the 2 ms we slept
}

TEST(Telemetry, JsonReportContainsAllSections) {
  ScopedEnable scope;
  count(Counter::kGompParallel, 3);
  record(Hist::kGompBarrierWaitCentralNs, 512);
  gauge_max(Gauge::kGompTaskQueueDepthHwm, 7);
  placement(2, 4);
  std::string json = Registry::instance().json("unit-test");
  EXPECT_NE(json.find("\"tag\": \"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"gomp.parallel\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gomp.barrier_wait.central_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"le_ns\": 1024, \"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"gomp.task_queue_depth_hwm\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"cluster2\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(Telemetry, RuntimeDirectivesAreObserved) {
  ScopedEnable scope;
  gomp::RuntimeOptions opts;
  // Pin the central barrier: the kAuto default resolves to hierarchical for
  // this team (4 scatter-placed threads span 3 clusters), and this test
  // asserts against the central wait histogram specifically.
  opts.barrier = gomp::BarrierKind::kCentral;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);

  long sum = 0;
  rt.parallel([&](gomp::ParallelContext& ctx) {
    long local = 0;
    ctx.for_loop(0, 1000, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) local += i;
    });
    ctx.barrier();
    ctx.single([] {});
    ctx.critical([&] { sum += local; });
    (void)ctx.reduce_sum(local);
  });

  Snapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.counter(Counter::kGompParallel), 1u);
  EXPECT_EQ(s.counter(Counter::kGompFor), 4u);      // one per team member
  EXPECT_EQ(s.counter(Counter::kGompSingle), 4u);   // entry per thread
  EXPECT_EQ(s.counter(Counter::kGompCritical), 4u);
  EXPECT_EQ(s.counter(Counter::kGompReduction), 4u);
  // for (barrier) + explicit + single + 2x reduce + implicit, per thread.
  EXPECT_GE(s.counter(Counter::kGompBarrier), 4u * 5u);
  EXPECT_EQ(s.hist(Hist::kGompParallelNs).count, 1u);
  EXPECT_GE(s.hist(Hist::kGompBarrierWaitCentralNs).count,
            s.counter(Counter::kGompBarrier));
  // Three pool workers were handed the region.
  EXPECT_EQ(s.counter(Counter::kGompPoolDispatch), 3u);
  EXPECT_EQ(s.hist(Hist::kGompPoolDispatchNs).count, 3u);
}

TEST(Telemetry, HierarchicalBarrierCrossesCoreNetOncePerCluster) {
  ScopedEnable scope;
  gomp::RuntimeOptions opts;
  opts.barrier = gomp::BarrierKind::kHierarchical;
  gomp::Icvs icvs;
  icvs.num_threads = 6;  // scatter: 2 threads in each of the 3 clusters
  opts.icvs = icvs;
  gomp::Runtime rt(opts);

  constexpr int kExplicitBarriers = 10;
  rt.parallel([&](gomp::ParallelContext& ctx) {
    for (int i = 0; i < kExplicitBarriers; ++i) ctx.barrier();
  });

  Snapshot s = Registry::instance().snapshot();
  const std::uint64_t local = s.counter(Counter::kGompBarrierLocal);
  const std::uint64_t xcluster = s.counter(Counter::kGompBarrierXCluster);
  // Every barrier phase: one leader per occupied cluster crosses CoreNet
  // (3 = O(clusters)), everyone else stays cluster-local (the other 3).
  EXPECT_EQ((local + xcluster) % 6, 0u);
  EXPECT_GE(xcluster, 3u * kExplicitBarriers);
  EXPECT_EQ(local, xcluster);  // 1 leader + 1 local waiter per cluster
  EXPECT_GE(s.hist(Hist::kGompBarrierWaitHierarchicalNs).count,
            1u * kExplicitBarriers);
}

TEST(Telemetry, CentralBarrierCrossesCoreNetPerRemoteThread) {
  ScopedEnable scope;
  gomp::RuntimeOptions opts;
  opts.barrier = gomp::BarrierKind::kCentral;
  gomp::Icvs icvs;
  icvs.num_threads = 6;  // same shape as the hierarchical witness above
  opts.icvs = icvs;
  gomp::Runtime rt(opts);

  rt.parallel([&](gomp::ParallelContext& ctx) {
    for (int i = 0; i < 10; ++i) ctx.barrier();
  });

  Snapshot s = Registry::instance().snapshot();
  const std::uint64_t local = s.counter(Counter::kGompBarrierLocal);
  const std::uint64_t xcluster = s.counter(Counter::kGompBarrierXCluster);
  // Flat barrier: 4 of the 6 threads live outside the master's cluster, so
  // cross-cluster arrivals run O(n) — double the hierarchical count for
  // the identical team shape.
  EXPECT_EQ(xcluster, 2u * local);
  EXPECT_GT(xcluster, 0u);
}

TEST(Telemetry, NestedBubbleTeamsAreCounted) {
  ScopedEnable scope;
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 3;
  icvs.nested = true;
  icvs.max_active_levels = 2;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);

  rt.parallel([&](gomp::ParallelContext& ctx) {
    ctx.runtime().parallel([](gomp::ParallelContext& inner) {
      inner.barrier();
    }, 2);
  });

  Snapshot s = Registry::instance().snapshot();
  // All three 2-wide nested teams fit their master's own cluster.
  EXPECT_EQ(s.counter(Counter::kGompTeamBubble), 3u);
  EXPECT_EQ(s.counter(Counter::kGompTeamBubbleSpill), 0u);
}

TEST(Telemetry, WidthOneRegionSkipsPoolAndBarrier) {
  ScopedEnable scope;
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);

  rt.parallel([](gomp::ParallelContext& ctx) { ctx.barrier(); }, 1);

  Snapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.counter(Counter::kGompParallel), 1u);
  // No pool dispatch, no barrier-wait samples, no locality traffic: the
  // serialized region never constructs a barrier or rings a doorbell.
  EXPECT_EQ(s.counter(Counter::kGompPoolDispatch), 0u);
  EXPECT_EQ(s.counter(Counter::kGompBarrierLocal), 0u);
  EXPECT_EQ(s.counter(Counter::kGompBarrierXCluster), 0u);
}

TEST(Telemetry, McaBackendObservesMrapiLayer) {
  ScopedEnable scope;
  gomp::RuntimeOptions opts;
  opts.backend = gomp::BackendKind::kMca;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  {
    gomp::Runtime rt(opts);
    rt.parallel([&](gomp::ParallelContext& ctx) {
      ctx.critical([] {});
    });
  }
  Snapshot s = Registry::instance().snapshot();
  // Master node + 3 worker nodes at minimum; all retired with the runtime.
  EXPECT_GE(s.counter(Counter::kMrapiNodeCreate), 4u);
  EXPECT_EQ(s.counter(Counter::kMrapiNodeCreate),
            s.counter(Counter::kMrapiNodeRetire));
  // The critical construct goes through an MRAPI mutex on this backend.
  EXPECT_GE(s.counter(Counter::kMrapiMutexAcquire), 4u);

  // A blocking MRAPI lock() records its acquire latency.
  mrapi::Mutex mu;
  mrapi::LockKey lock_key;
  ASSERT_EQ(mu.lock(mrapi::kTimeoutInfinite, &lock_key), Status::kSuccess);
  ASSERT_EQ(mu.unlock(lock_key), Status::kSuccess);
  s = Registry::instance().snapshot();
  EXPECT_GE(s.hist(Hist::kMrapiMutexAcquireNs).count, 1u);
}

TEST(Telemetry, ReportPathRedirectTruncatesThenAppends) {
  ScopedEnable scope;
  Registry::instance().reset();
  count(Counter::kGompParallel, 2);
  const std::string path = ::testing::TempDir() + "ompmca_telemetry_test.json";

  Registry::instance().set_report_path(path);
  Registry::instance().write_report("first");
  Registry::instance().write_report("second");  // appends

  std::string contents;
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
    std::fclose(f);
  }
  EXPECT_NE(contents.find("\"tag\": \"first\""), std::string::npos);
  EXPECT_NE(contents.find("\"tag\": \"second\""), std::string::npos);

  // Re-setting the same path starts a fresh file: the first report of a new
  // "session" truncates instead of growing the old one forever.
  Registry::instance().set_report_path(path);
  Registry::instance().write_report("third");
  contents.clear();
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
    std::fclose(f);
  }
  EXPECT_EQ(contents.find("\"tag\": \"first\""), std::string::npos);
  EXPECT_NE(contents.find("\"tag\": \"third\""), std::string::npos);

  Registry::instance().set_report_path("");  // back to stderr for later tests
  std::remove(path.c_str());
}

TEST(Telemetry, ResetClearsEverything) {
  ScopedEnable scope;
  count(Counter::kGompParallel, 9);
  record(Hist::kGompForNs, 77);
  gauge_max(Gauge::kGompTaskQueueDepthHwm, 5);
  placement(0, 2);
  Registry::instance().reset();
  Snapshot s = Registry::instance().snapshot();
  EXPECT_EQ(s.counter(Counter::kGompParallel), 0u);
  EXPECT_EQ(s.hist(Hist::kGompForNs).count, 0u);
  EXPECT_EQ(s.gauge(Gauge::kGompTaskQueueDepthHwm), 0u);
  EXPECT_EQ(s.placements[0], 0u);
}

}  // namespace
}  // namespace ompmca::obs
