// Flight-recorder tests: ring-wrap retention, per-thread ordering, the
// disabled-mode no-op guarantee, Chrome JSON export round-trips, flow
// events from a real fork, and the crash-dump hook on a seeded check
// violation.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "gomp/gomp.hpp"

namespace ompmca::obs::trace {
namespace {

/// Arms the tracer for one test and restores a clean default state after.
class ScopedTrace {
 public:
  explicit ScopedTrace(Mode m, std::size_t cap = 4096) {
    set_mode(Mode::kOff);
    set_ring_capacity(cap);
    reset();
    set_mode(m);
  }
  ~ScopedTrace() {
    set_mode(Mode::kOff);
    set_ring_capacity(4096);
    reset();
  }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;
};

std::size_t total_events(const std::vector<ThreadTrace>& threads) {
  std::size_t n = 0;
  for (const auto& tt : threads) n += tt.events.size();
  return n;
}

/// The snapshot entry that recorded events since the last reset (tests emit
/// from one thread at a time).
const ThreadTrace* active_thread(const std::vector<ThreadTrace>& threads) {
  for (const auto& tt : threads) {
    if (tt.recorded > 0) return &tt;
  }
  return nullptr;
}

// --- a minimal JSON syntax validator (no dependencies) -----------------------

class JsonValidator {
 public:
  explicit JsonValidator(std::string_view text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    bool digits = false;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      digits = digits ||
               std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0;
      ++pos_;
    }
    return digits && pos_ > start;
  }
  bool literal(std::string_view lit) {
    if (s_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }
  bool expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) return false;
    ++pos_;
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

std::size_t count_occurrences(const std::string& hay, const std::string& pin) {
  std::size_t n = 0;
  for (std::size_t at = hay.find(pin); at != std::string::npos;
       at = hay.find(pin, at + pin.size())) {
    ++n;
  }
  return n;
}

// --- tests -------------------------------------------------------------------

TEST(Trace, DisabledModeEmitsZeroEvents) {
  set_mode(Mode::kOff);
  reset();
  EXPECT_FALSE(enabled());
  instant(Type::kBarrier, 1, 2);
  complete(Type::kFor, 123);
  instant_at(Type::kForkRing, 456, 7, 8);
  { Span span(Type::kParallel, 1, 2); }
  EXPECT_EQ(total_events(snapshot()), 0u);
  EXPECT_EQ(flight_record_count(), 0u);
  dump_flight_record("disabled");  // no-op while off
  EXPECT_EQ(flight_record_count(), 0u);
}

TEST(Trace, RingWrapPreservesNewestEvents) {
  ScopedTrace scoped(Mode::kRing, 64);
  ASSERT_EQ(ring_capacity(), 64u);
  for (std::uint64_t i = 0; i < 200; ++i) {
    instant(Type::kLoopChunk, i, i + 1);
  }
  const auto threads = snapshot();
  const ThreadTrace* tt = active_thread(threads);
  ASSERT_NE(tt, nullptr);
  EXPECT_EQ(tt->recorded, 200u);
  EXPECT_EQ(tt->dropped, 136u);
  ASSERT_EQ(tt->events.size(), 64u);
  // Only the newest 64 survive, in order.
  for (std::size_t i = 0; i < tt->events.size(); ++i) {
    EXPECT_EQ(tt->events[i].a0, 136 + i);
    EXPECT_EQ(tt->events[i].type, Type::kLoopChunk);
  }
}

TEST(Trace, FullModeArchivesEverything) {
  ScopedTrace scoped(Mode::kFull, 64);
  for (std::uint64_t i = 0; i < 200; ++i) {
    instant(Type::kLoopChunk, i, i + 1);
  }
  const auto threads = snapshot();
  const ThreadTrace* tt = active_thread(threads);
  ASSERT_NE(tt, nullptr);
  EXPECT_EQ(tt->recorded, 200u);
  EXPECT_EQ(tt->dropped, 0u);
  ASSERT_EQ(tt->events.size(), 200u);
  for (std::size_t i = 0; i < tt->events.size(); ++i) {
    EXPECT_EQ(tt->events[i].a0, i);
  }
}

TEST(Trace, PerThreadOrderingIsMonotonic) {
  ScopedTrace scoped(Mode::kRing);
  constexpr int kThreads = 4;
  constexpr std::uint64_t kEvents = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (std::uint64_t i = 0; i < kEvents; ++i) {
        instant(Type::kMutexAcquire, i);
      }
    });
  }
  for (auto& w : workers) w.join();
  unsigned active = 0;
  for (const auto& tt : snapshot()) {
    if (tt.recorded == 0) continue;
    ++active;
    EXPECT_EQ(tt.events.size(), kEvents);
    for (std::size_t i = 1; i < tt.events.size(); ++i) {
      EXPECT_GE(tt.events[i].begin_ns, tt.events[i - 1].begin_ns)
          << "tid " << tt.tid << " event " << i;
      EXPECT_EQ(tt.events[i].a0, tt.events[i - 1].a0 + 1);
    }
  }
  EXPECT_GE(active, static_cast<unsigned>(kThreads));
}

TEST(Trace, SpanRecordsDuration) {
  ScopedTrace scoped(Mode::kRing);
  {
    Span span(Type::kCritical);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const auto threads = snapshot();
  const ThreadTrace* tt = active_thread(threads);
  ASSERT_NE(tt, nullptr);
  ASSERT_EQ(tt->events.size(), 1u);
  EXPECT_EQ(tt->events[0].type, Type::kCritical);
  EXPECT_GE(tt->events[0].end_ns - tt->events[0].begin_ns, 1000000u);
}

TEST(Trace, ExportedJsonParsesAndRoundTripsEventCounts) {
  ScopedTrace scoped(Mode::kRing);
  instant(Type::kBarrier, 0, 4);
  complete(Type::kFor, monotonic_nanos() - 1000, 1);
  instant(Type::kSteal, 3, 1);
  instant_at(Type::kForkRing, monotonic_nanos(), 42, 4);
  instant(Type::kWorkerWake, 42);

  const std::size_t snapshot_total = total_events(snapshot());
  ASSERT_EQ(snapshot_total, 5u);
  const std::string json = chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json;
  // Every recorded event surfaces as exactly one complete ("X") entry.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"X\""), snapshot_total);
  // The ring/wake pair carries a flow arrow each.
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"s\""), 1u);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"f\""), 1u);
  EXPECT_NE(json.find("\"name\":\"barrier\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"central\""), std::string::npos);
}

TEST(Trace, RealForkEmitsMatchingFlowEvents) {
  ScopedTrace scoped(Mode::kRing);
  {
    gomp::RuntimeOptions opts;
    gomp::Icvs icvs;
    icvs.num_threads = 2;
    opts.icvs = icvs;
    gomp::Runtime rt(opts);
    rt.parallel([](gomp::ParallelContext& ctx) { ctx.barrier(); });
  }
  std::vector<std::uint64_t> ring_epochs;
  std::vector<std::uint64_t> wake_epochs;
  for (const auto& tt : snapshot()) {
    for (const auto& e : tt.events) {
      if (e.type == Type::kForkRing) ring_epochs.push_back(e.a0);
      if (e.type == Type::kWorkerWake) wake_epochs.push_back(e.a0);
    }
  }
  ASSERT_FALSE(ring_epochs.empty());
  ASSERT_FALSE(wake_epochs.empty());
  // Every wake belongs to a rung epoch (the flow arrows bind).
  for (std::uint64_t epoch : wake_epochs) {
    EXPECT_NE(std::find(ring_epochs.begin(), ring_epochs.end(), epoch),
              ring_epochs.end())
        << "wake for unrung epoch " << epoch;
  }
  const std::string json = chrome_json();
  EXPECT_TRUE(JsonValidator(json).valid());
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(Trace, CrashDumpFiresOnSeededCheckViolation) {
  ScopedTrace scoped(Mode::kRing);
  check::reset();
  const bool was_abort = check::abort_on_violation();
  check::set_abort_on_violation(false);

  // Seed a lock-order inversion through the check core directly (compiled
  // in every build): A(100) -> B(200), then B -> A.
  int a = 0;
  int b = 0;
  check::on_acquire(check::LockClass::kMrapiMutex, &a, 100, "trace_test:a1");
  check::on_acquire(check::LockClass::kMrapiMutex, &b, 200, "trace_test:b1");
  check::on_release(check::LockClass::kMrapiMutex, &b);
  check::on_release(check::LockClass::kMrapiMutex, &a);
  EXPECT_EQ(flight_record_count(), 0u);
  check::on_acquire(check::LockClass::kMrapiMutex, &b, 200, "trace_test:b2");
  check::on_acquire(check::LockClass::kMrapiMutex, &a, 100, "trace_test:a2");
  check::on_release(check::LockClass::kMrapiMutex, &a);
  check::on_release(check::LockClass::kMrapiMutex, &b);

  EXPECT_EQ(check::violation_count(), 1u);
  EXPECT_EQ(flight_record_count(), 1u);
  const std::string record = last_flight_record();
  EXPECT_NE(record.find("check:lock_order_inversion"), std::string::npos)
      << record;
  // The offending acquisitions are the newest events in the record.
  EXPECT_NE(record.find("lock_acquire class=0 key=200"), std::string::npos)
      << record;
  EXPECT_NE(record.find("lock_acquire class=0 key=100"), std::string::npos)
      << record;
  EXPECT_NE(record.find("check_violation"), std::string::npos) << record;

  check::set_abort_on_violation(was_abort);
  check::reset();
}

TEST(Trace, ModeRoundTripAndCapacityClamp) {
  set_mode(Mode::kFull);
  EXPECT_EQ(mode(), Mode::kFull);
  EXPECT_TRUE(enabled());
  set_mode(Mode::kOff);
  EXPECT_EQ(mode(), Mode::kOff);
  set_ring_capacity(100);  // rounds up to a power of two
  EXPECT_EQ(ring_capacity(), 128u);
  set_ring_capacity(1);  // clamps to the minimum
  EXPECT_EQ(ring_capacity(), 16u);
  set_ring_capacity(4096);
  reset();
}

}  // namespace
}  // namespace ompmca::obs::trace
