// Live-monitor tests: delta-sampler correctness under concurrent writers,
// tenant attribution across masters, the stall watchdog's fire-exactly-once
// protocol against a seeded (pinned-open) region, rendered-format shape,
// and clean sampler shutdown mid-region.
#include "obs/monitor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/time.hpp"
#include "gomp/gomp.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace ompmca::obs {
namespace {

std::uint64_t stall_count() {
  return Registry::instance().snapshot().counter(Counter::kObsStallDetected);
}

/// Spin-waits (bounded) until @p pred holds; returns its final value.
template <typename Pred>
bool eventually(Pred pred, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

TEST(Monitor, DeltaSamplerReportsExactDeltas) {
  ScopedEnable scope;
  monitor::DeltaSampler sampler;
  count(Counter::kGompParallel, 7);
  record(Hist::kGompParallelNs, 1000);
  record(Hist::kGompParallelNs, 3000);
  monitor::Sample s1 = sampler.take();
  const unsigned c = static_cast<unsigned>(Counter::kGompParallel);
  const unsigned h = static_cast<unsigned>(Hist::kGompParallelNs);
  EXPECT_EQ(s1.tick, 1u);
  EXPECT_EQ(s1.counter_delta[c], 7u);
  EXPECT_EQ(s1.counter_total[c], 7u);
  EXPECT_EQ(s1.hist_delta[h].count, 2u);
  EXPECT_GT(s1.interval_s, 0.0);

  // Nothing moved: the next delta is exactly zero while totals persist.
  monitor::Sample s2 = sampler.take();
  EXPECT_EQ(s2.tick, 2u);
  EXPECT_EQ(s2.counter_delta[c], 0u);
  EXPECT_EQ(s2.counter_total[c], 7u);
  EXPECT_EQ(s2.hist_delta[h].count, 0u);

  count(Counter::kGompParallel, 3);
  monitor::Sample s3 = sampler.take();
  EXPECT_EQ(s3.counter_delta[c], 3u);
  EXPECT_EQ(s3.counter_total[c], 10u);
}

TEST(Monitor, DeltaSamplerSurvivesRegistryReset) {
  ScopedEnable scope;
  monitor::DeltaSampler sampler;
  count(Counter::kGompParallel, 5);
  (void)sampler.take();
  Registry::instance().reset();  // counters go backwards
  count(Counter::kGompParallel, 2);
  monitor::Sample s = sampler.take();
  // Clamped, never underflowed: 2 < 5, so the delta reports 0, not 2^64-3.
  EXPECT_EQ(s.counter_delta[static_cast<unsigned>(Counter::kGompParallel)],
            0u);
}

TEST(Monitor, DeltaSamplesSumToTotalUnderConcurrentWriters) {
  ScopedEnable scope;
  monitor::DeltaSampler sampler;
  (void)sampler.take();  // baseline

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        count(Counter::kMrapiMutexAcquire);
        record(Hist::kMrapiMutexAcquireNs, 500);
      }
    });
  }
  // Sample concurrently with the writers; every counted event must land in
  // exactly one interval (deltas partition the timeline).
  std::uint64_t summed = 0;
  std::uint64_t summed_hist = 0;
  for (int i = 0; i < 50; ++i) {
    monitor::Sample s = sampler.take();
    summed += s.counter_delta[static_cast<unsigned>(Counter::kMrapiMutexAcquire)];
    summed_hist +=
        s.hist_delta[static_cast<unsigned>(Hist::kMrapiMutexAcquireNs)].count;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : writers) t.join();
  monitor::Sample last = sampler.take();
  summed += last.counter_delta[static_cast<unsigned>(Counter::kMrapiMutexAcquire)];
  summed_hist +=
      last.hist_delta[static_cast<unsigned>(Hist::kMrapiMutexAcquireNs)].count;

  Snapshot total = Registry::instance().snapshot();
  EXPECT_EQ(summed, total.counter(Counter::kMrapiMutexAcquire));
  EXPECT_EQ(summed_hist, total.hist(Hist::kMrapiMutexAcquireNs).count);
}

TEST(Monitor, TenantMetersAttributePerMaster) {
  ScopedEnable scope;
  tenant::reset();
  // Two masters, distinct meters: regions and dispatch latencies must not
  // bleed across threads.
  std::uint64_t id_a = 0;
  std::uint64_t id_b = 0;
  std::thread a([&] {
    id_a = tenant::current_id();
    for (int i = 0; i < 10; ++i) tenant::on_region(1000, false);
    tenant::add_lease_wait(111);
  });
  std::thread b([&] {
    id_b = tenant::current_id();
    for (int i = 0; i < 3; ++i) tenant::on_region(8000, true);
  });
  a.join();
  b.join();
  EXPECT_NE(id_a, id_b);

  bool saw_a = false;
  bool saw_b = false;
  for (const tenant::Snap& t : tenant::snapshot()) {
    if (t.id == id_a) {
      saw_a = true;
      EXPECT_EQ(t.regions, 10u);
      EXPECT_EQ(t.degraded_width, 0u);
      EXPECT_EQ(t.lease_wait_ns, 111u);
      EXPECT_EQ(t.dispatch.count, 10u);
    } else if (t.id == id_b) {
      saw_b = true;
      EXPECT_EQ(t.regions, 3u);
      EXPECT_EQ(t.degraded_width, 3u);
      EXPECT_EQ(t.dispatch.count, 3u);
    }
  }
  EXPECT_TRUE(saw_a);
  EXPECT_TRUE(saw_b);

  // The shutdown report carries the same attribution.
  const std::string report = Registry::instance().json("tenant-test");
  EXPECT_NE(report.find("\"tenants\""), std::string::npos);
  EXPECT_NE(report.find("\"degraded_width\": 3"), std::string::npos);
  tenant::reset();
}

TEST(Monitor, JsonlRenderingIsWellFormed) {
  ScopedEnable scope;
  monitor::DeltaSampler sampler;
  count(Counter::kGompParallel, 4);
  record(Hist::kGompParallelNs, 2000);
  tenant::on_region(1500, false);
  monitor::Sample s = sampler.take();
  const std::string line = monitor::to_jsonl(s);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line per tick
  EXPECT_NE(line.find("\"monitor\":\"ompmca\""), std::string::npos);
  EXPECT_NE(line.find("\"gomp.parallel\":{\"delta\":4"), std::string::npos);
  EXPECT_NE(line.find("\"gomp.parallel_ns\":{\"count\":1"), std::string::npos);
  EXPECT_NE(line.find("\"p99_ns\":"), std::string::npos);
  EXPECT_NE(line.find("\"tenants\":{"), std::string::npos);
  EXPECT_NE(line.find("\"stalls_total\":"), std::string::npos);
  // Quiet counters stay out of the line (delta-only rendering).
  EXPECT_EQ(line.find("mrapi.node_create"), std::string::npos);
  tenant::reset();
}

TEST(Monitor, PromRenderingFollowsExposition) {
  ScopedEnable scope;
  monitor::DeltaSampler sampler;
  count(Counter::kGompParallel, 2);
  record(Hist::kGompParallelNs, 4000);
  monitor::Sample s = sampler.take();
  const std::string text = monitor::to_prom(s);
  EXPECT_NE(text.find("# TYPE ompmca_gomp_parallel_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ompmca_gomp_parallel_total 2"), std::string::npos);
  EXPECT_NE(text.find("# TYPE ompmca_gomp_parallel_ns summary"),
            std::string::npos);
  EXPECT_NE(text.find("ompmca_gomp_parallel_ns{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(text.find("ompmca_gomp_parallel_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("ompmca_monitor_tick 1"), std::string::npos);
  // Every non-comment line is "name{labels} value" — no stray punctuation.
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string ln = text.substr(pos, eol - pos);
    if (!ln.empty() && ln[0] != '#') {
      EXPECT_NE(ln.find(' '), std::string::npos) << ln;
    }
    pos = eol + 1;
  }
}

TEST(Monitor, SamplerThreadStreamsJsonlToFile) {
  ScopedEnable scope;
  const std::string path = "monitor_test_stream.jsonl";
  monitor::Options o;
  o.interval_ms = 5;
  o.path = path;
  o.stall_ns = 0;  // no watchdog in this test
  ASSERT_TRUE(monitor::start(o));
  EXPECT_FALSE(monitor::start(o));  // second monitor refused
  count(Counter::kGompParallel, 6);
  EXPECT_TRUE(eventually([] { return monitor::ticks() >= 3; }));
  monitor::stop();
  EXPECT_FALSE(monitor::running());
  const std::uint64_t final_ticks = monitor::ticks();
  EXPECT_GE(final_ticks, 3u);

  // One JSON object per line, and the tick counter matches the line count.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
  std::fclose(f);
  std::uint64_t lines = 0;
  for (char ch : contents) lines += ch == '\n' ? 1 : 0;
  EXPECT_EQ(lines, final_ticks);
  EXPECT_NE(contents.find("\"gomp.parallel\""), std::string::npos);
  EXPECT_EQ(monitor::last_rendered_sample().front(), '{');
  std::remove(path.c_str());
}

TEST(Monitor, WatchdogFiresExactlyOnceOnSeededStall) {
  ScopedEnable scope;
  trace::set_mode(trace::Mode::kRing);  // arm the flight recorder
  trace::reset();

  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 2;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);
  rt.parallel([](gomp::ParallelContext&) {}, 2);  // launch workers

  const std::uint64_t flights_before = trace::flight_record_count();

  monitor::Options o;
  o.interval_ms = 10;
  o.path = "monitor_test_watchdog.jsonl";
  o.stall_ns = 40'000'000;  // 40 ms: far above dispatch, far below the pin
  ASSERT_TRUE(monitor::start(o));

  // Seed the stall: a region whose body pins the slot open until released.
  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  std::thread master([&] {
    rt.parallel(
        [&](gomp::ParallelContext& ctx) {
          if (ctx.thread_num() == 0) entered.store(true);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        },
        2);
  });
  ASSERT_TRUE(eventually([&] { return entered.load(); }));
  // The watchdog must fire once the region outlives stall_ns...
  EXPECT_TRUE(eventually([] { return stall_count() >= 1; }));
  // ...and exactly once: the same seq is deduped on every later tick.
  const std::uint64_t ticks_at_fire = monitor::ticks();
  EXPECT_TRUE(
      eventually([&] { return monitor::ticks() >= ticks_at_fire + 4; }));
  EXPECT_EQ(stall_count(), 1u);
  // The report dumped the flight record through the crash path.
  EXPECT_EQ(trace::flight_record_count(), flights_before + 1);
  EXPECT_NE(trace::last_flight_record().find("stall watchdog"),
            std::string::npos);

  release.store(true, std::memory_order_release);
  master.join();

  // The region completed: later ticks stay quiet (no phantom re-report).
  const std::uint64_t after = monitor::ticks();
  EXPECT_TRUE(eventually([&] { return monitor::ticks() >= after + 2; }));
  EXPECT_EQ(stall_count(), 1u);

  monitor::stop();
  trace::set_mode(trace::Mode::kOff);
  std::remove("monitor_test_watchdog.jsonl");
}

TEST(Monitor, CleanShutdownMidRegion) {
  ScopedEnable scope;
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 2;
  opts.icvs = icvs;
  gomp::Runtime rt(opts);

  monitor::Options o;
  o.interval_ms = 5;
  o.path = "monitor_test_shutdown.jsonl";
  ASSERT_TRUE(monitor::start(o));

  std::atomic<bool> release{false};
  std::atomic<bool> entered{false};
  std::thread master([&] {
    rt.parallel(
        [&](gomp::ParallelContext& ctx) {
          if (ctx.thread_num() == 0) entered.store(true);
          while (!release.load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
          }
        },
        2);
  });
  ASSERT_TRUE(eventually([&] { return entered.load(); }));
  // stop() must return promptly with the region still open — the final
  // sample and watchdog pass cannot wait on the region's join.
  monitor::stop();
  EXPECT_FALSE(monitor::running());
  EXPECT_GE(monitor::ticks(), 1u);  // the final sample was emitted

  release.store(true, std::memory_order_release);
  master.join();

  // Restartable after a stop: the monitor is a process-lifetime service.
  ASSERT_TRUE(monitor::start(o));
  monitor::stop();
  std::remove("monitor_test_shutdown.jsonl");
}

}  // namespace
}  // namespace ompmca::obs
