// Chaos / soak suite: EPCC- and NPB-shaped workloads running under seeded
// fault schedules, asserting (a) results stay correct, (b) nothing hangs,
// (c) no MRAPI handles leak, and (d) the fault accounting balances —
// every injected failure was either recovered by a runtime policy or
// surfaced (exhausted) in a controlled way.
//
// The injection macros compile to no-ops without -DOMPMCA_FAULT=ON, so the
// whole suite skips there; the fixed seeds make every failure schedule
// reproducible under -DOMPMCA_FAULT=ON.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "check/check.hpp"
#include "fault/fault.hpp"
#include "gomp/runtime.hpp"
#include "mcapi/mcapi.hpp"
#include "mrapi/database.hpp"
#include "mrapi/node.hpp"
#include "mrapi/semaphore.hpp"
#include "mtapi/mtapi.hpp"
#include "npb/npb.hpp"
#include "obs/monitor.hpp"
#include "obs/telemetry.hpp"

namespace ompmca {
namespace {

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !OMPMCA_FAULT_ENABLED
    GTEST_SKIP() << "built without -DOMPMCA_FAULT=ON";
#endif
    mrapi::Database::instance().reset();
    mcapi::Registry::instance().reset();
    fault::reset();
  }
  void TearDown() override {
    fault::reset();
    mcapi::Registry::instance().reset();
    mrapi::Database::instance().reset();
  }

  // Every injected failure must be accounted: recovered by a policy or
  // surfaced after retries.  Called with all work joined.
  static void expect_accounting_balances() {
    fault::set_enabled(false);
    fault::Counts t = fault::totals();
    EXPECT_GT(t.injected, 0u) << "schedule never fired: dead chaos test";
    EXPECT_EQ(t.injected, t.recovered + t.exhausted);
  }
};

gomp::Runtime make_mca_runtime(unsigned nthreads) {
  gomp::RuntimeOptions opts;
  opts.backend = gomp::BackendKind::kMca;
  gomp::Icvs icvs;
  icvs.num_threads = nthreads;
  opts.icvs = icvs;
  return gomp::Runtime(opts);
}

TEST_F(ChaosTest, EpccShapedRegionsSurviveTenPercentInjection) {
  const std::uint64_t violations0 = check::violation_count();
  ASSERT_TRUE(fault::configure(
      "mrapi.mutex_acquire:rate=0.1:seed=42,pool.worker_launch:nth=3,"
      "mrapi.shmem_create:rate=0.1:seed=7,mrapi.mutex_create:rate=0.1:seed=3,"
      "mrapi.node_create:rate=0.1:seed=11,mrapi.arena_alloc:rate=0.1:seed=5"));
  fault::set_enabled(true);
  {
    gomp::Runtime rt = make_mca_runtime(4);
    constexpr long kN = 4000;
    for (int rep = 0; rep < 40; ++rep) {
      // The EPCC syncbench shape: parallel + for + reduction + critical +
      // barrier per repetition, verified against the closed form.
      long sum = 0;
      rt.parallel([&](gomp::ParallelContext& ctx) {
        long local = 0;
        ctx.for_loop(
            0, kN,
            [&](long lo, long hi) {
              for (long i = lo; i < hi; ++i) local += i;
            },
            {}, /*nowait=*/true);
        long total = ctx.reduce_sum(local);
        ctx.critical([&] { sum = total; });
        ctx.barrier();
      });
      ASSERT_EQ(sum, kN * (kN - 1) / 2) << "rep " << rep;
    }
  }
  expect_accounting_balances();
  // Zero leaked handles: every node (master + workers, including all the
  // degraded-team launches) retired with the runtime.
  auto d = mrapi::Database::instance().domain(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)->node_count(), 0u);
  EXPECT_EQ(check::violation_count(), violations0);
}

TEST_F(ChaosTest, NpbKernelsVerifyUnderChaos) {
  const std::uint64_t violations0 = check::violation_count();
  ASSERT_TRUE(fault::configure(
      "mrapi.mutex_acquire:rate=0.1:seed=42,pool.worker_launch:nth=3,"
      "mrapi.shmem_create:rate=0.1:seed=7,mrapi.node_create:rate=0.1:seed=9"));
  fault::set_enabled(true);
  {
    gomp::Runtime rt = make_mca_runtime(4);
    auto is = npb::run_is(rt, npb::Class::S, 0);
    EXPECT_TRUE(is.verify.verified) << is.verify.detail;
    auto cg = npb::run_cg(rt, npb::Class::S, 0);
    EXPECT_TRUE(cg.verify.verified) << cg.verify.detail;
  }
  expect_accounting_balances();
  auto d = mrapi::Database::instance().domain(0);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ((*d)->node_count(), 0u);
  EXPECT_EQ(check::violation_count(), violations0);
}

TEST_F(ChaosTest, ShmemCreateFallsBackToHeapUnderArenaFailure) {
  ASSERT_TRUE(fault::configure("mrapi.arena_alloc:rate=1.0"));
  fault::set_enabled(true);
  auto node = mrapi::Node::initialize(0, 1, {"chaos"});
  ASSERT_TRUE(node.has_value());
  for (mrapi::ResourceKey key = 10; key < 20; ++key) {
    auto seg = node->shmem_create(key, 4096);
    ASSERT_TRUE(seg.has_value()) << key;
    // The arena said no every time; the paper's heap mode absorbed it.
    EXPECT_EQ((*seg)->attributes().mode, mrapi::ShmemMode::kHeap);
    auto addr = (*seg)->attach(node->node_id());
    ASSERT_TRUE(addr.has_value());
    ASSERT_EQ((*seg)->detach(node->node_id()), Status::kSuccess);
    ASSERT_EQ(node->shmem_delete(key), Status::kSuccess);
  }
  fault::set_enabled(false);
  EXPECT_GE(fault::counts(fault::Site::kMrapiArenaAlloc).injected, 10u);
  // Recovery is credited to the site that actually failed: the arena said
  // no, so the heap fallback (which lives in shmem_create) counts as the
  // arena site recovering.
  EXPECT_EQ(fault::counts(fault::Site::kMrapiArenaAlloc).recovered, 10u);
  EXPECT_EQ(fault::counts(fault::Site::kMrapiShmemCreate).recovered, 0u);
  fault::Counts t = fault::totals();
  EXPECT_EQ(t.injected, t.recovered + t.exhausted);
  ASSERT_EQ(node->finalize(), Status::kSuccess);
  auto d = mrapi::Database::instance().domain(0);
  EXPECT_EQ((*d)->node_count(), 0u);
  EXPECT_EQ((*d)->arena().used(), 0u);
}

TEST_F(ChaosTest, SemaphoreAcquireChaosWithBoundedRetry) {
  ASSERT_TRUE(fault::configure("mrapi.sem_acquire:rate=0.2:seed=13"));
  fault::set_enabled(true);
  auto node = mrapi::Node::initialize(0, 1, {"chaos"});
  ASSERT_TRUE(node.has_value());
  auto sem = node->sem_create(1, mrapi::SemaphoreAttributes{2});
  ASSERT_TRUE(sem.has_value());

  std::atomic<int> in_section{0};
  std::atomic<bool> over_limit{false};
  auto worker = [&] {
    for (int i = 0; i < 200; ++i) {
      // Application-level resilience: a spurious timeout is retried; the
      // retries are reported so the accounting balances.
      std::uint64_t failures = 0;
      for (;;) {
        Status s = (*sem)->acquire(1000);
        if (ok(s)) break;
        EXPECT_EQ(s, Status::kTimeout);
        ++failures;
      }
      if (failures > 0) {
        fault::note_recovered(fault::Site::kMrapiSemAcquire, failures);
      }
      if (in_section.fetch_add(1) + 1 > 2) over_limit.store(true);
      in_section.fetch_sub(1);
      EXPECT_EQ((*sem)->release(), Status::kSuccess);
    }
  };
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  EXPECT_FALSE(over_limit.load()) << "semaphore admitted more than its limit";
  expect_accounting_balances();
  ASSERT_EQ(node->sem_delete(1), Status::kSuccess);
  ASSERT_EQ(node->finalize(), Status::kSuccess);
}

TEST_F(ChaosTest, McapiMsgSendBackoffAbsorbsInjectedLimits) {
  ASSERT_TRUE(fault::configure("mcapi.msg_send:rate=0.2:seed=21"));
  fault::set_enabled(true);
  auto a = mcapi::endpoint_create(0, 1, 1);
  auto b = mcapi::endpoint_create(0, 2, 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  constexpr int kCount = 500;
  long sent_sum = 0;
  for (int i = 0; i < kCount; ++i) {
    // msg_send's internal backoff absorbs bursts; the rare exhausted send
    // surfaces kMessageLimit and the application (this loop) retries.
    while (mcapi::msg_send(*a, *b, &i, sizeof(i)) ==
           Status::kMessageLimit) {
    }
    sent_sum += i;
  }
  long recv_sum = 0;
  for (int i = 0; i < kCount; ++i) {
    int v = 0;
    auto n = (*b)->msg_recv(&v, sizeof(v), 1000);
    ASSERT_TRUE(n.has_value());
    recv_sum += v;
  }
  EXPECT_EQ(recv_sum, sent_sum);
  EXPECT_EQ((*b)->messages_available(), 0u);
  expect_accounting_balances();
}

TEST_F(ChaosTest, MtapiTaskStartRetriesTransientExhaustion) {
  ASSERT_TRUE(fault::configure("mtapi.task_start:rate=0.2:seed=31"));
  fault::set_enabled(true);
  mtapi::TaskRuntime trt;
  std::atomic<long> acc{0};
  ASSERT_EQ(trt.action_create(1,
                              [&](const void* args, std::size_t) {
                                acc.fetch_add(*static_cast<const int*>(args));
                              }),
            Status::kSuccess);
  constexpr int kTasks = 200;
  std::vector<mtapi::TaskHandle> tasks;
  for (int i = 0; i < kTasks; ++i) {
    for (;;) {
      auto t = trt.task_start(1, &i, sizeof(i));
      if (t) {
        tasks.push_back(*t);
        break;
      }
      // Internal retries exhausted (counted); start over at the app level.
      ASSERT_EQ(t.status(), Status::kOutOfResources);
    }
  }
  for (auto& t : tasks) EXPECT_EQ(t->wait(), Status::kSuccess);
  EXPECT_EQ(acc.load(), static_cast<long>(kTasks) * (kTasks - 1) / 2);
  expect_accounting_balances();
}

TEST_F(ChaosTest, TaskAllocChaosKeepsTaskSemantics) {
  const std::uint64_t violations0 = check::violation_count();
  // Every explicit-task allocation is a potential injection; the runtime's
  // bounded retry absorbs most, and the exhausted remainder fall back to
  // undeferred inline execution — the result must not change either way.
  ASSERT_TRUE(fault::configure("gomp.task_alloc:rate=0.3:seed=17"));
  fault::set_enabled(true);
  {
    gomp::Runtime rt = make_mca_runtime(4);
    std::function<long(int)> fib = [&](int n) -> long {
      gomp::ParallelContext& ctx = *gomp::Runtime::current();
      if (n < 2) return n;
      long a = 0, b = 0;
      ctx.task([&fib, &a, n] { a = fib(n - 1); });
      b = fib(n - 2);
      ctx.taskwait();
      return a + b;
    };
    long result = 0;
    std::atomic<long> loop_sum{0};
    rt.parallel([&](gomp::ParallelContext& ctx) {
      ctx.single([&] {
        result = fib(13);
        ctx.taskloop(1, 501, [&](long lo, long hi) {
          long local = 0;
          for (long i = lo; i < hi; ++i) local += i;
          loop_sum.fetch_add(local);
        });
      });
    });
    EXPECT_EQ(result, 233);
    EXPECT_EQ(loop_sum.load(), 125250L);
  }
  expect_accounting_balances();
  EXPECT_EQ(check::violation_count(), violations0);
}

TEST_F(ChaosTest, TaskDependChainSurvivesAllocExhaustion) {
  // A serialised depend chain under heavy injection: with rate 0.5 and the
  // runtime's 4 attempts, ~6% of spawns exhaust their retries and run
  // undeferred — which must still respect the chain's ordering (the
  // fallback waits for the address's predecessors before running inline).
  ASSERT_TRUE(fault::configure("gomp.task_alloc:rate=0.5:seed=23"));
  fault::set_enabled(true);
  {
    gomp::Runtime rt = make_mca_runtime(4);
    int cell = 0;
    std::vector<int> order;
    rt.parallel([&](gomp::ParallelContext& ctx) {
      ctx.single([&] {
        const void* addr = &cell;
        for (int i = 0; i < 64; ++i) {
          ctx.task_depend([&order, i] { order.push_back(i); }, {}, {addr});
        }
      }, /*nowait=*/true);
    });
    ASSERT_EQ(order.size(), 64u);
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(order[static_cast<std::size_t>(i)], i) << "chain broke at " << i;
    }
  }
  expect_accounting_balances();
}

TEST_F(ChaosTest, ReportSectionReflectsTheRun) {
  ASSERT_TRUE(fault::configure("pool.worker_launch:nth=2"));
  fault::set_enabled(true);
  {
    gomp::Runtime rt = make_mca_runtime(4);
    long sum = 0;
    rt.parallel([&](gomp::ParallelContext& ctx) {
      long part = ctx.reduce_sum(static_cast<long>(ctx.thread_num()));
      ctx.master([&] { sum = part; });
    });
    const unsigned n = rt.icvs().num_threads;
    (void)n;
    EXPECT_GE(sum, 0);
  }
  fault::set_enabled(false);
  std::string json = fault::json_section();
  EXPECT_NE(json.find("\"site\": \"pool.worker_launch\""), std::string::npos);
  fault::Counts c = fault::counts(fault::Site::kPoolWorkerLaunch);
  EXPECT_GT(c.injected, 0u);
  EXPECT_EQ(c.injected, c.recovered + c.exhausted);
}

TEST_F(ChaosTest, MonitorWatchdogStaysQuietUnderInjection) {
  // The live monitor sampling at full speed while launch/alloc faults fire:
  // degraded-width recoveries must NOT read as stalls (the watchdog keys on
  // region age, not width), the sampler must tick through the chaos, and
  // the fault accounting still balances with the monitor thread attached.
  ASSERT_TRUE(fault::configure(
      "pool.worker_launch:rate=0.2:seed=19,mrapi.arena_alloc:rate=0.1:seed=3"));
  fault::set_enabled(true);
  obs::set_enabled(true);
  obs::Registry::instance().reset();
  obs::monitor::Options mo;
  mo.interval_ms = 5;
  mo.path = "chaos_monitor.jsonl";
  mo.stall_ns = 5'000'000'000;  // 5 s: nothing here runs that long
  ASSERT_TRUE(obs::monitor::start(mo));
  {
    gomp::Runtime rt = make_mca_runtime(4);
    for (int rep = 0; rep < 200; ++rep) {
      long sum = 0;
      rt.parallel([&](gomp::ParallelContext& ctx) {
        long part = ctx.reduce_sum(static_cast<long>(ctx.thread_num()));
        ctx.master([&] { sum = part; });
      });
      EXPECT_GE(sum, 0);
    }
  }
  obs::monitor::stop();
  EXPECT_GE(obs::monitor::ticks(), 1u);
  const obs::Snapshot s = obs::Registry::instance().snapshot();
  EXPECT_EQ(s.counter(obs::Counter::kObsStallDetected), 0u)
      << "degraded teams misread as stalls";
  EXPECT_GT(s.counter(obs::Counter::kObsMonitorTick), 0u);
  expect_accounting_balances();
  obs::set_enabled(false);
  std::remove("chaos_monitor.jsonl");
}

}  // namespace
}  // namespace ompmca
