// Unit tests for the fault-injection core: spec parsing, schedule
// semantics (rate / nth / count / seed), accounting and the JSON report.
// The core library is compiled in every build (the OMPMCA_FAULT option
// only gates the macros at the call sites), so these run unconditionally.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace ompmca::fault {
namespace {

class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
};

TEST_F(FaultTest, SiteNamesRoundTrip) {
  for (unsigned i = 0; i < static_cast<unsigned>(Site::kCount); ++i) {
    auto site = static_cast<Site>(i);
    Site back;
    ASSERT_TRUE(site_from_name(name(site), &back)) << name(site);
    EXPECT_EQ(back, site);
  }
  Site out;
  EXPECT_FALSE(site_from_name("mrapi.not_a_site", &out));
  EXPECT_FALSE(site_from_name("", &out));
}

TEST_F(FaultTest, BareSiteFailsEveryEvaluation) {
  ASSERT_TRUE(configure("mrapi.shmem_create"));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(should_fail(Site::kMrapiShmemCreate));
  }
  EXPECT_EQ(counts(Site::kMrapiShmemCreate).injected, 10u);
  // Unarmed sites never fire.
  EXPECT_FALSE(should_fail(Site::kMcapiMsgSend));
}

TEST_F(FaultTest, NthFailsEveryNth) {
  ASSERT_TRUE(configure("pool.worker_launch:nth=3"));
  std::vector<int> fired;
  for (int i = 1; i <= 9; ++i) {
    if (should_fail(Site::kPoolWorkerLaunch)) fired.push_back(i);
  }
  EXPECT_EQ(fired, (std::vector<int>{3, 6, 9}));
}

TEST_F(FaultTest, RateZeroNeverFires) {
  ASSERT_TRUE(configure("mcapi.msg_send:rate=0.0"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(should_fail(Site::kMcapiMsgSend));
  }
  EXPECT_EQ(counts(Site::kMcapiMsgSend).injected, 0u);
}

TEST_F(FaultTest, RateOneAlwaysFires) {
  ASSERT_TRUE(configure("mcapi.msg_send:rate=1.0"));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(should_fail(Site::kMcapiMsgSend));
  }
}

TEST_F(FaultTest, RateIsSeededAndReproducible) {
  auto draw = [](const char* spec) {
    EXPECT_TRUE(configure(spec));
    std::vector<bool> seq;
    for (int i = 0; i < 256; ++i) {
      seq.push_back(should_fail(Site::kMrapiMutexAcquire));
    }
    return seq;
  };
  auto a = draw("mrapi.mutex_acquire:rate=0.5:seed=7");
  auto b = draw("mrapi.mutex_acquire:rate=0.5:seed=7");
  EXPECT_EQ(a, b);  // same seed, same schedule
  auto c = draw("mrapi.mutex_acquire:rate=0.5:seed=8");
  EXPECT_NE(a, c);  // 2^-256 false-failure probability
}

TEST_F(FaultTest, RateIsApproximatelyHonoured) {
  ASSERT_TRUE(configure("mrapi.sem_acquire:rate=0.1:seed=42"));
  int fired = 0;
  constexpr int kDraws = 10000;
  for (int i = 0; i < kDraws; ++i) {
    if (should_fail(Site::kMrapiSemAcquire)) ++fired;
  }
  // 10000 draws at p=0.1: mean 1000, sd = 30; +/- 10 sd.
  EXPECT_GT(fired, 700);
  EXPECT_LT(fired, 1300);
}

TEST_F(FaultTest, CountCapsInjections) {
  ASSERT_TRUE(configure("mrapi.node_create:count=2"));
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (should_fail(Site::kMrapiNodeCreate)) ++fired;
  }
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(counts(Site::kMrapiNodeCreate).injected, 2u);
}

TEST_F(FaultTest, MultiEntrySpec) {
  ASSERT_TRUE(
      configure("mrapi.shmem_create:rate=0.1:seed=42,pool.worker_launch:nth=2,"
                "mcapi.msg_send:rate=0.05"));
  EXPECT_FALSE(should_fail(Site::kPoolWorkerLaunch));
  EXPECT_TRUE(should_fail(Site::kPoolWorkerLaunch));
  // Sites not in the spec stay disarmed.
  EXPECT_FALSE(should_fail(Site::kMtapiTaskStart));
}

TEST_F(FaultTest, MalformedSpecClearsEverything) {
  ASSERT_TRUE(configure("mrapi.shmem_create"));
  EXPECT_TRUE(should_fail(Site::kMrapiShmemCreate));
  for (const char* bad :
       {"mrapi.shmem_create:rate=1.5", "mrapi.shmem_create:rate=abc",
        "no.such_site", "mrapi.shmem_create:nth=0",
        "mrapi.shmem_create:bogus=1", "mrapi.shmem_create:rate",
        "mrapi.shmem_create:nth=99999999999999999999",
        "mrapi.shmem_create,also.bad"}) {
    EXPECT_FALSE(configure(bad)) << bad;
    // A malformed spec must never half-arm: everything is disarmed.
    EXPECT_FALSE(should_fail(Site::kMrapiShmemCreate)) << bad;
  }
}

TEST_F(FaultTest, EmptySpecDisarms) {
  ASSERT_TRUE(configure("mrapi.shmem_create"));
  ASSERT_TRUE(configure(""));
  EXPECT_FALSE(should_fail(Site::kMrapiShmemCreate));
}

TEST_F(FaultTest, AccountingBalances) {
  ASSERT_TRUE(configure("mrapi.mutex_create"));
  ASSERT_TRUE(should_fail(Site::kMrapiMutexCreate));
  ASSERT_TRUE(should_fail(Site::kMrapiMutexCreate));
  ASSERT_TRUE(should_fail(Site::kMrapiMutexCreate));
  note_recovered(Site::kMrapiMutexCreate, 2);
  note_exhausted(Site::kMrapiMutexCreate, 1);
  Counts c = counts(Site::kMrapiMutexCreate);
  EXPECT_EQ(c.injected, 3u);
  EXPECT_EQ(c.recovered, 2u);
  EXPECT_EQ(c.exhausted, 1u);
  Counts t = totals();
  EXPECT_EQ(t.injected, t.recovered + t.exhausted);
}

TEST_F(FaultTest, ResetCountsKeepsScheduleAndReplaysIt) {
  ASSERT_TRUE(configure("pool.worker_launch:nth=2"));
  EXPECT_FALSE(should_fail(Site::kPoolWorkerLaunch));
  EXPECT_TRUE(should_fail(Site::kPoolWorkerLaunch));
  reset_counts();
  EXPECT_EQ(totals().injected, 0u);
  // The schedule (including the RNG stream) replays from the start.
  EXPECT_FALSE(should_fail(Site::kPoolWorkerLaunch));
  EXPECT_TRUE(should_fail(Site::kPoolWorkerLaunch));
}

TEST_F(FaultTest, EnabledSwitchIsIndependentOfSchedule) {
  EXPECT_FALSE(enabled());
  set_enabled(true);
  EXPECT_TRUE(enabled());
  reset();
  EXPECT_FALSE(enabled());
}

TEST_F(FaultTest, JsonSectionShape) {
  ASSERT_TRUE(configure("mrapi.shmem_create:rate=0.5:seed=9"));
  (void)should_fail(Site::kMrapiShmemCreate);
  std::string json = json_section();
  EXPECT_NE(json.find("\"enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"spec\": \"mrapi.shmem_create:rate=0.5:seed=9\""),
            std::string::npos);
  EXPECT_NE(json.find("\"injected_total\""), std::string::npos);
  EXPECT_NE(json.find("\"recovered_total\""), std::string::npos);
  EXPECT_NE(json.find("\"exhausted_total\""), std::string::npos);
  EXPECT_NE(json.find("\"site\": \"mrapi.shmem_create\""), std::string::npos);
  // Unarmed, never-hit sites are omitted.
  EXPECT_EQ(json.find("mtapi.task_start"), std::string::npos);
}

}  // namespace
}  // namespace ompmca::fault
