#include "platform/cost_model.hpp"

#include <gtest/gtest.h>

namespace ompmca::platform {
namespace {

CostModel native_model() {
  return CostModel(Topology::t4240rdb(), ServiceCosts::native());
}

TEST(TeamShape, SingleThreadOwnsItsCore) {
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 1);
  EXPECT_FALSE(shape.smt_shared(0));
  EXPECT_EQ(shape.clusters_spanned(), 1u);
}

TEST(TeamShape, TwelveThreadsNoSmtSharing) {
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 12);
  for (unsigned i = 0; i < 12; ++i) EXPECT_FALSE(shape.smt_shared(i));
  EXPECT_EQ(shape.clusters_spanned(), 3u);
}

TEST(TeamShape, TwentyFourThreadsAllSmtShared) {
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 24);
  for (unsigned i = 0; i < 24; ++i) EXPECT_TRUE(shape.smt_shared(i));
}

TEST(TeamShape, ThirteenThreadsOneSharedCore) {
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 13);
  int shared = 0;
  for (unsigned i = 0; i < 13; ++i) {
    if (shape.smt_shared(i)) ++shared;
  }
  EXPECT_EQ(shared, 2);  // the 13th thread plus the lane-0 it joined
}

TEST(CostModel, ComputeScalesInverselyWithIssue) {
  CostModel m = native_model();
  Topology t = Topology::t4240rdb();
  Work w;
  w.flops = 1e9;
  TeamShape one(t, 1);
  TeamShape full(t, 24);
  // A thread sharing a core via SMT must be slower on the same work.
  EXPECT_GT(m.chunk_seconds(w, full, 0), m.chunk_seconds(w, one, 0));
}

TEST(CostModel, L1ResidentFasterThanDram) {
  CostModel m = native_model();
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 1);
  Work small;
  small.bytes = 1e6;
  small.footprint_bytes = 16 * 1024;  // fits L1
  Work big = small;
  big.footprint_bytes = 64.0 * 1024 * 1024;  // DRAM
  EXPECT_LT(m.chunk_seconds(small, shape, 0),
            m.chunk_seconds(big, shape, 0));
}

TEST(CostModel, DramBandwidthDividesAmongThreads) {
  CostModel m = native_model();
  Topology t = Topology::t4240rdb();
  Work w;
  w.bytes = 1e8;
  w.footprint_bytes = 256.0 * 1024 * 1024;
  TeamShape few(t, 2);
  TeamShape many(t, 24);
  EXPECT_LT(m.chunk_seconds(w, few, 0), m.chunk_seconds(w, many, 0));
}

TEST(CostModel, RooflineTakesMax) {
  CostModel m = native_model();
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 1);
  Work compute_only;
  compute_only.flops = 1e9;
  Work memory_only;
  memory_only.bytes = 1e9;
  memory_only.footprint_bytes = 1e9;
  Work both;
  both.flops = 1e9;
  both.bytes = 1e9;
  both.footprint_bytes = 1e9;
  double tc = m.chunk_seconds(compute_only, shape, 0);
  double tm = m.chunk_seconds(memory_only, shape, 0);
  double tb = m.chunk_seconds(both, shape, 0);
  EXPECT_DOUBLE_EQ(tb, std::max(tc, tm));
}

TEST(CostModel, BarrierCostGrowsWithThreads) {
  CostModel m = native_model();
  Topology t = Topology::t4240rdb();
  double prev = 0.0;
  for (unsigned n : {2u, 4u, 8u, 16u, 24u}) {
    TeamShape shape(t, n);
    double cost = m.barrier_seconds(shape);
    EXPECT_GT(cost, prev);
    prev = cost;
  }
}

TEST(CostModel, ForkJoinPositiveAndGrowing) {
  CostModel m = native_model();
  EXPECT_GT(m.fork_seconds(4), 0.0);
  EXPECT_GT(m.fork_seconds(24), m.fork_seconds(4));
  EXPECT_GT(m.join_seconds(24), m.join_seconds(4));
}

TEST(ServiceCosts, McaWithinTableOneBandOfNative) {
  // Table I reports ratios scattered around 1.0; the calibrated service
  // costs must keep every primitive within a modest band of native.
  ServiceCosts n = ServiceCosts::native();
  ServiceCosts m = ServiceCosts::mca();
  auto ratio = [](double a, double b) { return a / b; };
  EXPECT_NEAR(ratio(m.fork_base, n.fork_base), 1.0, 0.15);
  EXPECT_NEAR(ratio(m.barrier_per_thread, n.barrier_per_thread), 1.0, 0.15);
  EXPECT_NEAR(ratio(m.lock_cycles, n.lock_cycles), 1.0, 0.25);
  EXPECT_NEAR(ratio(m.single_cycles, n.single_cycles), 1.0, 0.25);
  EXPECT_NEAR(ratio(m.reduction_base, n.reduction_base), 1.0, 0.15);
}

TEST(CostModel, WorkAccumulation) {
  Work a;
  a.flops = 10;
  a.bytes = 100;
  a.footprint_bytes = 1000;
  Work b;
  b.flops = 5;
  b.bytes = 50;
  b.footprint_bytes = 500;
  a += b;
  EXPECT_DOUBLE_EQ(a.flops, 15);
  EXPECT_DOUBLE_EQ(a.bytes, 150);
  EXPECT_DOUBLE_EQ(a.footprint_bytes, 1000);  // max, not sum
}

TEST(CostModel, CyclesToSeconds) {
  CostModel m = native_model();
  // 1.8e9 cycles at 1.8 GHz is one second.
  EXPECT_DOUBLE_EQ(m.cycles_to_seconds(1.8e9), 1.0);
}

}  // namespace
}  // namespace ompmca::platform
