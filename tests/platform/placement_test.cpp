// Placement policies and the SIMD (AltiVec) issue model.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "gomp/barrier.hpp"
#include "platform/cost_model.hpp"
#include "platform/topology.hpp"

namespace ompmca::platform {
namespace {

TEST(Placement, CompactIsIdentityOrder) {
  Topology t = Topology::t4240rdb();
  for (unsigned i = 0; i < t.num_hw_threads(); ++i) {
    EXPECT_EQ(t.placement(i, PlacementPolicy::kCompact), i);
  }
}

TEST(Placement, CompactPairsSmtSiblingsImmediately) {
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 2, PlacementPolicy::kCompact);
  EXPECT_TRUE(shape.smt_shared(0));
  EXPECT_TRUE(shape.smt_shared(1));
  TeamShape spread(t, 2, PlacementPolicy::kScatter);
  EXPECT_FALSE(spread.smt_shared(0));
  EXPECT_FALSE(spread.smt_shared(1));
}

TEST(Placement, CompactFillsOneClusterFirst) {
  Topology t = Topology::t4240rdb();
  TeamShape shape(t, 8, PlacementPolicy::kCompact);
  EXPECT_EQ(shape.clusters_spanned(), 1u);
  TeamShape spread(t, 8, PlacementPolicy::kScatter);
  EXPECT_EQ(spread.clusters_spanned(), 3u);
}

TEST(Placement, BothPoliciesCoverAllHwThreadsOnce) {
  Topology t = Topology::t4240rdb();
  for (auto policy :
       {PlacementPolicy::kScatter, PlacementPolicy::kCompact}) {
    std::set<unsigned> seen;
    for (unsigned i = 0; i < t.num_hw_threads(); ++i) {
      EXPECT_TRUE(seen.insert(t.placement(i, policy)).second);
    }
  }
}

TEST(Placement, ScatterPinsSecondSmtLaneAfterAllCores) {
  // Lane-major scatter: software threads 0..11 land on lane-0 of the 12
  // cores; 12..23 revisit the same cores in the same order on lane 1.  The
  // second-lane pinning order mirroring the first keeps thread i and thread
  // i+12 SMT siblings — the shape the cost model's SMT derate assumes.
  Topology t = Topology::t4240rdb();
  ASSERT_EQ(t.num_hw_threads(), 24u);
  for (unsigned i = 0; i < 12; ++i) {
    const auto& first = t.hw_thread(t.placement(i, PlacementPolicy::kScatter));
    const auto& second =
        t.hw_thread(t.placement(i + 12, PlacementPolicy::kScatter));
    EXPECT_EQ(first.smt_lane, 0u) << "sw thread " << i;
    EXPECT_EQ(second.smt_lane, 1u) << "sw thread " << i + 12;
    EXPECT_EQ(first.core, second.core) << "sw thread " << i;
  }
}

TEST(Placement, SameClusterAgreesWithClusterIdsAcrossBoundaries) {
  Topology t = Topology::t4240rdb();
  for (unsigned a = 0; a < t.num_hw_threads(); ++a) {
    for (unsigned b = 0; b < t.num_hw_threads(); ++b) {
      EXPECT_EQ(t.same_cluster(a, b),
                t.cluster_of_hw_thread(a) == t.cluster_of_hw_thread(b))
          << "hw " << a << " vs " << b;
    }
  }
  // Spot-check an actual cluster boundary: the last HW thread of cluster 0
  // and the first of cluster 1 must disagree.
  unsigned last_of_0 = 0, first_of_1 = 0;
  bool found_1 = false;
  for (unsigned h = 0; h < t.num_hw_threads(); ++h) {
    if (t.cluster_of_hw_thread(h) == 0) last_of_0 = h;
    if (!found_1 && t.cluster_of_hw_thread(h) == 1) {
      first_of_1 = h;
      found_1 = true;
    }
  }
  ASSERT_TRUE(found_1);
  EXPECT_FALSE(t.same_cluster(last_of_0, first_of_1));
  EXPECT_TRUE(t.same_cluster(last_of_0, last_of_0));
}

TEST(Placement, GenericTopologyDegeneratesHierarchicalBarrierToTree) {
  // Topology::generic() models a single-cluster SMP; a team shape built on
  // it spans one cluster no matter the width, so a hierarchical-barrier
  // request must collapse to the flat arity-4 tree.
  Topology t = Topology::generic(4, 2);
  ASSERT_EQ(t.num_clusters(), 1u);
  TeamShape shape(t, 8, PlacementPolicy::kScatter);
  EXPECT_EQ(shape.clusters_spanned(), 1u);

  EXPECT_EQ(gomp::effective_barrier_kind(gomp::BarrierKind::kHierarchical,
                                         gomp::WaitPolicy::kPassive,
                                         shape.clusters_spanned()),
            gomp::BarrierKind::kTree);

  std::vector<unsigned> cluster_of_thread(8);
  for (unsigned i = 0; i < 8; ++i) {
    cluster_of_thread[i] =
        t.cluster_of_hw_thread(t.placement(i, PlacementPolicy::kScatter));
  }
  auto barrier =
      gomp::make_barrier(gomp::BarrierKind::kHierarchical, 8,
                         gomp::WaitPolicy::kPassive, cluster_of_thread.data());
  EXPECT_NE(dynamic_cast<gomp::TreeBarrier*>(barrier.get()), nullptr);
  EXPECT_EQ(dynamic_cast<gomp::HierarchicalBarrier*>(barrier.get()), nullptr);
}

TEST(Placement, CompactSlowerForComputeBoundSmallTeams) {
  Topology t = Topology::t4240rdb();
  CostModel m(t, ServiceCosts::native());
  Work w;
  w.flops = 1e9;
  TeamShape compact(t, 4, PlacementPolicy::kCompact);
  TeamShape spread(t, 4, PlacementPolicy::kScatter);
  EXPECT_GT(m.chunk_seconds(w, compact, 0), m.chunk_seconds(w, spread, 0));
}

// --- SIMD / AltiVec issue model -----------------------------------------------

TEST(SimdModel, VectorFractionSpeedsUpT4240) {
  Topology t = Topology::t4240rdb();
  CostModel m(t, ServiceCosts::native());
  TeamShape shape(t, 1);
  Work scalar;
  scalar.flops = 1e9;
  Work vectorised = scalar;
  vectorised.vector_fraction = 1.0;
  double ts = m.chunk_seconds(scalar, shape, 0);
  double tv = m.chunk_seconds(vectorised, shape, 0);
  // 16 GFLOPS AltiVec vs the 2 flops/cycle scalar pipe: ~4.45x at 1.8 GHz.
  EXPECT_NEAR(ts / tv, t.vector_flops_per_cycle_per_core() /
                           t.flops_per_cycle_per_core(),
              0.01);
}

TEST(SimdModel, NoGainOnP4080) {
  Topology t = Topology::p4080ds();
  CostModel m(t, ServiceCosts::native());
  TeamShape shape(t, 1);
  Work scalar;
  scalar.flops = 1e9;
  Work vectorised = scalar;
  vectorised.vector_fraction = 1.0;
  EXPECT_DOUBLE_EQ(m.chunk_seconds(scalar, shape, 0),
                   m.chunk_seconds(vectorised, shape, 0));
}

TEST(SimdModel, PartialFractionInterpolates) {
  Topology t = Topology::t4240rdb();
  CostModel m(t, ServiceCosts::native());
  TeamShape shape(t, 1);
  Work w;
  w.flops = 1e9;
  Work half = w;
  half.vector_fraction = 0.5;
  Work full = w;
  full.vector_fraction = 1.0;
  double t0 = m.chunk_seconds(w, shape, 0);
  double t50 = m.chunk_seconds(half, shape, 0);
  double t100 = m.chunk_seconds(full, shape, 0);
  EXPECT_LT(t100, t50);
  EXPECT_LT(t50, t0);
  // Amdahl within the loop: time(0.5) = (time(0) + time(1)) / 2.
  EXPECT_NEAR(t50, (t0 + t100) / 2.0, t0 * 1e-9);
}

TEST(SimdModel, FractionClamped) {
  Topology t = Topology::t4240rdb();
  CostModel m(t, ServiceCosts::native());
  TeamShape shape(t, 1);
  Work over;
  over.flops = 1e9;
  over.vector_fraction = 7.0;  // nonsense in, clamped
  Work full = over;
  full.vector_fraction = 1.0;
  EXPECT_DOUBLE_EQ(m.chunk_seconds(over, shape, 0),
                   m.chunk_seconds(full, shape, 0));
}

}  // namespace
}  // namespace ompmca::platform
