#include "platform/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ompmca::platform {
namespace {

TEST(TopologyT4240, PaperShape) {
  Topology t = Topology::t4240rdb();
  EXPECT_EQ(t.num_clusters(), 3u);
  EXPECT_EQ(t.num_cores(), 12u);
  EXPECT_EQ(t.num_hw_threads(), 24u);  // "twenty-four virtual threads"
  EXPECT_DOUBLE_EQ(t.frequency_ghz(), 1.8);
}

TEST(TopologyT4240, ClustersOfFourCores) {
  Topology t = Topology::t4240rdb();
  for (unsigned c = 0; c < t.num_clusters(); ++c) {
    EXPECT_EQ(t.cluster(c).cores.size(), 4u);
  }
}

TEST(TopologyT4240, EveryCoreDualThreaded) {
  Topology t = Topology::t4240rdb();
  for (unsigned c = 0; c < t.num_cores(); ++c) {
    EXPECT_EQ(t.core(c).hw_threads.size(), 2u);
  }
}

TEST(TopologyT4240, CacheHierarchyPerPaper) {
  Topology t = Topology::t4240rdb();
  ASSERT_EQ(t.caches().size(), 3u);
  EXPECT_EQ(t.cache(0).size_bytes, 32u * 1024);        // L1 32KB (§4C)
  EXPECT_EQ(t.cache(2).size_bytes, 3u * 512 * 1024);   // 1.5MB CoreNet L3
}

TEST(TopologyP4080, PreviousBoardShape) {
  Topology t = Topology::p4080ds();
  EXPECT_EQ(t.num_cores(), 8u);          // eight e500mc cores
  EXPECT_EQ(t.num_hw_threads(), 8u);     // no SMT
  EXPECT_EQ(t.num_clusters(), 1u);       // cores connect to CoreNet directly
  EXPECT_EQ(t.cache(1).size_bytes, 128u * 1024);  // 128KB backside L2 (§4C)
  EXPECT_EQ(t.cache(1).shared_by_hw_threads, 1u); // private per core
}

TEST(Topology, PlacementCoversAllHwThreadsOnce) {
  for (const Topology& t :
       {Topology::t4240rdb(), Topology::p4080ds(), Topology::generic(6, 2)}) {
    std::set<unsigned> seen;
    for (unsigned i = 0; i < t.num_hw_threads(); ++i) {
      unsigned hw = t.placement(i);
      EXPECT_LT(hw, t.num_hw_threads());
      EXPECT_TRUE(seen.insert(hw).second)
          << "duplicate placement at slot " << i;
    }
  }
}

TEST(Topology, PlacementFillsCoresBeforeSmtSiblings) {
  Topology t = Topology::t4240rdb();
  // The first 12 software threads must land on 12 distinct cores.
  std::set<unsigned> cores;
  for (unsigned i = 0; i < 12; ++i) {
    cores.insert(t.hw_thread(t.placement(i)).core);
  }
  EXPECT_EQ(cores.size(), 12u);
  // Threads 12..23 are the SMT siblings; every core now has 2.
  std::map<unsigned, int> occupancy;
  for (unsigned i = 0; i < 24; ++i) {
    ++occupancy[t.hw_thread(t.placement(i)).core];
  }
  for (const auto& [core, n] : occupancy) EXPECT_EQ(n, 2) << "core " << core;
}

TEST(Topology, PlacementSpreadsClusters) {
  Topology t = Topology::t4240rdb();
  // The first 3 software threads should hit 3 different clusters.
  std::set<unsigned> clusters;
  for (unsigned i = 0; i < 3; ++i) {
    unsigned core = t.hw_thread(t.placement(i)).core;
    clusters.insert(t.core(core).cluster);
  }
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(Topology, SameCoreSameCluster) {
  Topology t = Topology::t4240rdb();
  // HW threads 0 and 1 are the two lanes of core 0.
  EXPECT_TRUE(t.same_core(0, 1));
  EXPECT_TRUE(t.same_cluster(0, 1));
  // HW threads 0 and 2 are different cores of cluster 0.
  EXPECT_FALSE(t.same_core(0, 2));
  EXPECT_TRUE(t.same_cluster(0, 2));
  // Core 0 (cluster 0) and core 4 (cluster 1).
  EXPECT_FALSE(t.same_cluster(0, 8));
}

TEST(Topology, HopCyclesMonotoneWithDistance) {
  Topology t = Topology::t4240rdb();
  double same = t.hop_cycles(0, 0);
  double smt = t.hop_cycles(0, 1);
  double intra = t.hop_cycles(0, 2);
  double inter = t.hop_cycles(0, 8);
  EXPECT_EQ(same, 0.0);
  EXPECT_LT(smt, intra);
  EXPECT_LT(intra, inter);
}

TEST(TopologyGeneric, RespectsParameters) {
  Topology t = Topology::generic(6, 2, 2.5);
  EXPECT_EQ(t.num_cores(), 6u);
  EXPECT_EQ(t.num_hw_threads(), 12u);
  EXPECT_DOUBLE_EQ(t.frequency_ghz(), 2.5);
}

}  // namespace
}  // namespace ompmca::platform
