#include "platform/resource_tree.hpp"

#include <gtest/gtest.h>

namespace ompmca::platform {
namespace {

TEST(ResourceTree, T4240Counts) {
  Topology t = Topology::t4240rdb();
  auto root = build_resource_tree(t);
  EXPECT_EQ(root->count(ResourceKind::kCluster), 3u);
  EXPECT_EQ(root->count(ResourceKind::kCore), 12u);
  EXPECT_EQ(root->count(ResourceKind::kHwThread), 24u);
  // 12 L1 + 3 L2 + 1 L3.
  EXPECT_EQ(root->count(ResourceKind::kCache), 16u);
  EXPECT_EQ(root->count(ResourceKind::kMemory), 1u);
  EXPECT_EQ(root->count(ResourceKind::kDma), 1u);
}

TEST(ResourceTree, RootAttributes) {
  Topology t = Topology::t4240rdb();
  auto root = build_resource_tree(t);
  EXPECT_EQ(root->attr_int("num_hw_threads"), 24);
  EXPECT_EQ(root->attr_int("num_cores"), 12);
  EXPECT_EQ(root->attr_int("frequency_mhz"), 1800);
}

TEST(ResourceTree, HwThreadsMarkedOnline) {
  auto root = build_resource_tree(Topology::t4240rdb());
  std::size_t online = 0;
  std::function<void(const ResourceNode&)> walk = [&](const ResourceNode& n) {
    if (n.kind == ResourceKind::kHwThread && n.attr_int("online", 0) == 1)
      ++online;
    for (const auto& c : n.children) walk(*c);
  };
  walk(*root);
  EXPECT_EQ(online, 24u);
}

TEST(ResourceTree, FindFirst) {
  auto root = build_resource_tree(Topology::t4240rdb());
  const ResourceNode* cache = root->find_first(ResourceKind::kCache);
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->attr_int("size_bytes"), 0);
  EXPECT_EQ(root->find_first(ResourceKind::kPartition), nullptr);
}

TEST(ResourceTree, PartitionsIncludedWhenConfigured) {
  Topology t = Topology::t4240rdb();
  auto hv = HypervisorConfig::whole_board(&t, 6ull << 30);
  auto root = build_resource_tree(t, &hv);
  EXPECT_EQ(root->count(ResourceKind::kPartition), 1u);
  const ResourceNode* p = root->find_first(ResourceKind::kPartition);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->attr_int("num_hw_threads"), 24);
  EXPECT_EQ(p->count(ResourceKind::kIoDevice), 3u);
}

TEST(ResourceTree, AttrFallbacks) {
  ResourceNode n;
  EXPECT_EQ(n.attr_int("missing", -5), -5);
  EXPECT_EQ(n.attr_string("missing", "x"), "x");
  n.attributes["s"] = std::string("v");
  EXPECT_EQ(n.attr_int("s", -1), -1);  // wrong type -> fallback
  EXPECT_EQ(n.attr_string("s"), "v");
}

TEST(ResourceTree, RenderContainsKeyRows) {
  auto root = build_resource_tree(Topology::t4240rdb());
  std::string text = render_resource_tree(*root);
  EXPECT_NE(text.find("[system]"), std::string::npos);
  EXPECT_NE(text.find("[cluster] cluster0"), std::string::npos);
  EXPECT_NE(text.find("hwthread23"), std::string::npos);
  EXPECT_NE(text.find("[dma]"), std::string::npos);
}

TEST(ResourceTree, P4080Counts) {
  auto root = build_resource_tree(Topology::p4080ds());
  EXPECT_EQ(root->count(ResourceKind::kCore), 8u);
  EXPECT_EQ(root->count(ResourceKind::kHwThread), 8u);
}

}  // namespace
}  // namespace ompmca::platform
