#include "platform/partition.hpp"

#include <gtest/gtest.h>

namespace ompmca::platform {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  Topology topo_ = Topology::t4240rdb();
};

TEST_F(PartitionTest, WholeBoardOwnsEverything) {
  auto cfg = HypervisorConfig::whole_board(&topo_, 6ull << 30);
  ASSERT_EQ(cfg.partitions().size(), 1u);
  EXPECT_EQ(cfg.partitions()[0].hw_threads.size(), 24u);
  for (unsigned hw = 0; hw < 24; ++hw) {
    EXPECT_NE(cfg.owner_of(hw), nullptr);
  }
}

TEST_F(PartitionTest, DisjointPartitionsAccepted) {
  HypervisorConfig cfg(&topo_);
  Partition control{"control", {0, 1, 2, 3}, {0, 1 << 30}, {"duart"}};
  Partition data{"data", {4, 5, 6, 7}, {1ull << 30, 1 << 30}, {"etsec"}};
  EXPECT_EQ(cfg.add_partition(control), Status::kSuccess);
  EXPECT_EQ(cfg.add_partition(data), Status::kSuccess);
  EXPECT_EQ(cfg.owner_of(0)->name, "control");
  EXPECT_EQ(cfg.owner_of(5)->name, "data");
  EXPECT_EQ(cfg.owner_of(9), nullptr);
}

TEST_F(PartitionTest, RejectsOverlappingHwThreads) {
  HypervisorConfig cfg(&topo_);
  EXPECT_EQ(cfg.add_partition({"a", {0, 1}, {}, {}}), Status::kSuccess);
  EXPECT_EQ(cfg.add_partition({"b", {1, 2}, {}, {}}),
            Status::kInvalidArgument);
}

TEST_F(PartitionTest, RejectsDuplicateHwThreadWithinPartition) {
  HypervisorConfig cfg(&topo_);
  EXPECT_EQ(cfg.add_partition({"a", {3, 3}, {}, {}}),
            Status::kInvalidArgument);
}

TEST_F(PartitionTest, RejectsOutOfRangeHwThread) {
  HypervisorConfig cfg(&topo_);
  EXPECT_EQ(cfg.add_partition({"a", {24}, {}, {}}), Status::kInvalidArgument);
}

TEST_F(PartitionTest, RejectsOverlappingMemoryWindows) {
  HypervisorConfig cfg(&topo_);
  EXPECT_EQ(cfg.add_partition({"a", {0}, {0, 4096}, {}}), Status::kSuccess);
  EXPECT_EQ(cfg.add_partition({"b", {1}, {2048, 4096}, {}}),
            Status::kInvalidArgument);
  EXPECT_EQ(cfg.add_partition({"c", {1}, {4096, 4096}, {}}),
            Status::kSuccess);  // adjacent is fine
}

TEST_F(PartitionTest, FindByName) {
  HypervisorConfig cfg(&topo_);
  (void)cfg.add_partition({"rt", {0}, {}, {}});
  auto idx = cfg.find("rt");
  ASSERT_TRUE(idx.has_value());
  EXPECT_EQ(*idx, 0u);
  EXPECT_FALSE(cfg.find("nope").has_value());
}

TEST(MemoryWindow, OverlapLogic) {
  MemoryWindow a{0, 100};
  MemoryWindow b{100, 100};
  MemoryWindow c{50, 10};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(a));
}

// --- ClusterOccupancy (nested-team bubble reservations) ------------------------

TEST(ClusterOccupancy, PrefersRequestedClusterWhenItFits) {
  ClusterOccupancy occ(3, 8);
  EXPECT_EQ(occ.capacity_per_cluster(), 8u);
  auto c = occ.reserve_bubble(4, 2);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 2u);
  EXPECT_EQ(occ.load(2), 4u);
  EXPECT_EQ(occ.load(0), 0u);
}

TEST(ClusterOccupancy, SpillsToLeastLoadedWhenPreferredIsFull) {
  ClusterOccupancy occ(3, 8);
  ASSERT_TRUE(occ.reserve_bubble(8, 0).has_value());  // fill cluster 0
  ASSERT_TRUE(occ.reserve_bubble(3, 1).has_value());  // partially load 1
  // Preferred 0 is full; least-loaded fitting cluster is 2 (load 0 < 3).
  auto c = occ.reserve_bubble(4, 0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 2u);
}

TEST(ClusterOccupancy, LowestIdWinsLoadTies) {
  ClusterOccupancy occ(3, 8);
  ASSERT_TRUE(occ.reserve_bubble(8, 1).has_value());  // fill preferred 1
  auto c = occ.reserve_bubble(2, 1);                  // 0 and 2 tie at load 0
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(*c, 0u);
}

TEST(ClusterOccupancy, RefusesWhenNoClusterFits) {
  ClusterOccupancy occ(2, 4);
  ASSERT_TRUE(occ.reserve_bubble(3, 0).has_value());
  ASSERT_TRUE(occ.reserve_bubble(3, 1).has_value());
  // Width 2 does not fit either cluster (load 3, capacity 4).
  EXPECT_FALSE(occ.reserve_bubble(2, 0).has_value());
  // Width 1 still fits.
  EXPECT_TRUE(occ.reserve_bubble(1, 0).has_value());
  // A team wider than any cluster can never bubble.
  EXPECT_FALSE(occ.reserve_bubble(5, 0).has_value());
}

TEST(ClusterOccupancy, ReleaseMakesRoomAgain) {
  ClusterOccupancy occ(2, 4);
  auto c = occ.reserve_bubble(4, 1);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(occ.load(1), 4u);  // cluster 1 is now full
  occ.release(*c, 4);
  EXPECT_EQ(occ.load(1), 0u);
  auto again = occ.reserve_bubble(4, 1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, 1u);
}

TEST(ClusterOccupancy, ReleaseClampsAtZero) {
  ClusterOccupancy occ(2, 4);
  occ.release(0, 3);  // spurious release must not underflow
  EXPECT_EQ(occ.load(0), 0u);
  ASSERT_TRUE(occ.reserve_bubble(2, 0).has_value());
  occ.release(0, 100);
  EXPECT_EQ(occ.load(0), 0u);
}

}  // namespace
}  // namespace ompmca::platform
