#include "common/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace ompmca {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void set(const char* name, const char* value) {
    ::setenv(name, value, 1);
    names_.push_back(name);
  }
  void TearDown() override {
    for (const char* n : names_) ::unsetenv(n);
  }
  std::vector<const char*> names_;
};

TEST_F(EnvTest, StringUnsetIsNullopt) {
  ::unsetenv("OMPMCA_TEST_UNSET");
  EXPECT_FALSE(env_string("OMPMCA_TEST_UNSET").has_value());
}

TEST_F(EnvTest, StringRoundTrip) {
  set("OMPMCA_TEST_S", "hello");
  EXPECT_EQ(env_string("OMPMCA_TEST_S").value(), "hello");
}

TEST_F(EnvTest, LongParses) {
  set("OMPMCA_TEST_L", "42");
  EXPECT_EQ(env_long("OMPMCA_TEST_L").value(), 42);
  set("OMPMCA_TEST_NEG", "-7");
  EXPECT_EQ(env_long("OMPMCA_TEST_NEG").value(), -7);
}

TEST_F(EnvTest, LongGarbageIsNullopt) {
  set("OMPMCA_TEST_G", "abc");
  EXPECT_FALSE(env_long("OMPMCA_TEST_G").has_value());
}

TEST_F(EnvTest, LongOverflowIsNullopt) {
  // strtol saturates with ERANGE; the parser must reject, not saturate —
  // a later cast to unsigned would otherwise truncate the saturated value.
  set("OMPMCA_TEST_OVF", "99999999999999999999");
  EXPECT_FALSE(env_long("OMPMCA_TEST_OVF").has_value());
  set("OMPMCA_TEST_OVF", "-99999999999999999999");
  EXPECT_FALSE(env_long("OMPMCA_TEST_OVF").has_value());
}

TEST_F(EnvTest, LongTrailingGarbageIsNullopt) {
  set("OMPMCA_TEST_TG", "4x");
  EXPECT_FALSE(env_long("OMPMCA_TEST_TG").has_value());
}

TEST_F(EnvTest, LongSurroundingWhitespaceTolerated) {
  set("OMPMCA_TEST_WS", "  42 ");
  EXPECT_EQ(env_long("OMPMCA_TEST_WS").value(), 42);
}

TEST_F(EnvTest, LongClampedClampsButNeverTruncates) {
  set("OMPMCA_TEST_CL", "5000000000");  // parses as long, above the cap
  EXPECT_EQ(env_long_clamped("OMPMCA_TEST_CL", 0, 1L << 20).value(),
            1L << 20);
  set("OMPMCA_TEST_CL", "-3");
  EXPECT_EQ(env_long_clamped("OMPMCA_TEST_CL", 0, 1L << 20).value(), 0);
  set("OMPMCA_TEST_CL", "99999999999999999999");  // unparsable: reject
  EXPECT_FALSE(env_long_clamped("OMPMCA_TEST_CL", 0, 1L << 20).has_value());
}

TEST(ParseLong, StrictWholeStringParse) {
  long v = 0;
  EXPECT_TRUE(parse_long("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_long("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_long("", &v));
  EXPECT_FALSE(parse_long("   ", &v));
  EXPECT_FALSE(parse_long("4x", &v));
  EXPECT_FALSE(parse_long("x4", &v));
  EXPECT_FALSE(parse_long("99999999999999999999", &v));
}

TEST_F(EnvTest, BoolSpellings) {
  for (const char* t : {"true", "TRUE", "yes", "on", "1"}) {
    set("OMPMCA_TEST_B", t);
    EXPECT_EQ(env_bool("OMPMCA_TEST_B"), true) << t;
  }
  for (const char* f : {"false", "No", "off", "0"}) {
    set("OMPMCA_TEST_B", f);
    EXPECT_EQ(env_bool("OMPMCA_TEST_B"), false) << f;
  }
  set("OMPMCA_TEST_B", "maybe");
  EXPECT_FALSE(env_bool("OMPMCA_TEST_B").has_value());
}

TEST_F(EnvTest, LongList) {
  set("OMPMCA_TEST_LIST", "4, 8,12");
  auto v = env_long_list("OMPMCA_TEST_LIST");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 4);
  EXPECT_EQ(v[1], 8);
  EXPECT_EQ(v[2], 12);
}

TEST_F(EnvTest, LongListMalformedIsEmpty) {
  set("OMPMCA_TEST_LIST", "4,x,12");
  EXPECT_TRUE(env_long_list("OMPMCA_TEST_LIST").empty());
}

TEST_F(EnvTest, LongListEmptyPieceIsEmpty) {
  set("OMPMCA_TEST_LIST", "4,,12");
  EXPECT_TRUE(env_long_list("OMPMCA_TEST_LIST").empty());
}

TEST_F(EnvTest, LongListTrailingGarbagePieceIsEmpty) {
  set("OMPMCA_TEST_LIST", "4,8x,12");
  EXPECT_TRUE(env_long_list("OMPMCA_TEST_LIST").empty());
}

TEST_F(EnvTest, LongListOverflowPieceIsEmpty) {
  set("OMPMCA_TEST_LIST", "4,99999999999999999999,12");
  EXPECT_TRUE(env_long_list("OMPMCA_TEST_LIST").empty());
}

TEST(EnvHelpers, IEquals) {
  EXPECT_TRUE(iequals("Static", "STATIC"));
  EXPECT_FALSE(iequals("static", "statics"));
  EXPECT_TRUE(iequals("", ""));
}

TEST(EnvHelpers, Trim) {
  EXPECT_EQ(trim("  a b \t"), "a b");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(EnvHelpers, Split) {
  auto v = split("a, b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[1], "b");
  EXPECT_EQ(v[2], "");
  EXPECT_EQ(v[3], "c");
}

}  // namespace
}  // namespace ompmca
