#include "common/fixed_vector.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ompmca {
namespace {

TEST(FixedVector, StartsEmpty) {
  FixedVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(FixedVector, PushPopAndIndex) {
  FixedVector<int, 4> v;
  EXPECT_TRUE(v.push_back(1));
  EXPECT_TRUE(v.push_back(2));
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
  EXPECT_EQ(v.back(), 2);
  v.pop_back();
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.back(), 1);
}

TEST(FixedVector, RejectsOverflow) {
  FixedVector<int, 2> v;
  EXPECT_TRUE(v.push_back(1));
  EXPECT_TRUE(v.push_back(2));
  EXPECT_TRUE(v.full());
  EXPECT_FALSE(v.push_back(3));
  EXPECT_EQ(v.size(), 2u);
}

TEST(FixedVector, DestroysElements) {
  auto counter = std::make_shared<int>(0);
  struct Probe {
    std::shared_ptr<int> c;
    ~Probe() {
      if (c) ++*c;
    }
  };
  {
    FixedVector<Probe, 4> v;
    v.push_back(Probe{counter});
    v.push_back(Probe{counter});
  }
  // Two live elements destroyed by the vector, plus the moved-from temps.
  EXPECT_GE(*counter, 2);
}

TEST(FixedVector, SwapErase) {
  FixedVector<std::string, 4> v;
  v.push_back("a");
  v.push_back("b");
  v.push_back("c");
  v.swap_erase(0);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], "c");
  EXPECT_EQ(v[1], "b");
}

TEST(FixedVector, SwapEraseLast) {
  FixedVector<int, 4> v;
  v.push_back(1);
  v.push_back(2);
  v.swap_erase(1);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(FixedVector, CopyAndMove) {
  FixedVector<std::string, 4> v;
  v.push_back("x");
  v.push_back("y");
  FixedVector<std::string, 4> copy(v);
  EXPECT_EQ(copy.size(), 2u);
  EXPECT_EQ(copy[1], "y");

  FixedVector<std::string, 4> moved(std::move(v));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], "x");
  EXPECT_TRUE(v.empty());  // NOLINT moved-from, defined by our type
}

TEST(FixedVector, RangeFor) {
  FixedVector<int, 8> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 10);
}

TEST(FixedVector, EmplaceBack) {
  FixedVector<std::pair<int, std::string>, 2> v;
  EXPECT_TRUE(v.emplace_back(1, "one"));
  EXPECT_EQ(v[0].second, "one");
}

}  // namespace
}  // namespace ompmca
