#include "common/rng.hpp"

#include <gtest/gtest.h>

namespace ompmca {
namespace {

TEST(SplitMix64, Deterministic) {
  SplitMix64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DoublesInUnitInterval) {
  Xoshiro256 rng(123);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, RoughlyUniform) {
  Xoshiro256 rng(99);
  int buckets[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    ++buckets[static_cast<int>(rng.next_double() * 10.0)];
  for (int b : buckets) {
    EXPECT_GT(b, n / 10 - n / 50);
    EXPECT_LT(b, n / 10 + n / 50);
  }
}

TEST(Xoshiro256, NextBelowRespectsBound) {
  Xoshiro256 rng(5);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

// --- the NPB generator: these values pin the exact reference sequence -------

TEST(NpbRandom, MatchesExactIntegerLcg) {
  // The double-double randlc must agree bit-for-bit with the LCG computed
  // in exact 128-bit integer arithmetic, for a long prefix of the sequence.
  constexpr unsigned long long kMod = 1ULL << 46;
  constexpr unsigned long long kA = 1220703125ULL;  // 5^13
  unsigned long long x = 314159265ULL;
  NpbRandom rng(static_cast<double>(x));
  for (int i = 0; i < 20000; ++i) {
    x = static_cast<unsigned long long>(
        (static_cast<unsigned __int128>(kA) * x) % kMod);
    double v = rng.next();
    ASSERT_DOUBLE_EQ(v, static_cast<double>(x) / static_cast<double>(kMod))
        << "diverged at step " << i;
  }
}

TEST(NpbRandom, ValuesInUnitInterval) {
  NpbRandom rng;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.next();
    EXPECT_GT(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(NpbRandom, SkipMatchesSequentialAdvance) {
  NpbRandom seq(314159265.0);
  for (int i = 0; i < 1000; ++i) seq.next();

  NpbRandom skip(314159265.0);
  skip.skip(1000);
  EXPECT_DOUBLE_EQ(seq.seed(), skip.seed());
}

TEST(NpbRandom, SkipZeroIsIdentity) {
  NpbRandom rng(271828183.0);
  double before = rng.seed();
  rng.skip(0);
  EXPECT_DOUBLE_EQ(rng.seed(), before);
}

TEST(NpbRandom, SkipComposes) {
  NpbRandom a(314159265.0);
  a.skip(123);
  a.skip(456);
  NpbRandom b(314159265.0);
  b.skip(579);
  EXPECT_DOUBLE_EQ(a.seed(), b.seed());
}

TEST(NpbRandom, FillMatchesNext) {
  NpbRandom a(314159265.0), b(314159265.0);
  double buf[64];
  a.fill(64, buf);
  for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(buf[i], b.next());
}

TEST(NpbRandom, Ipow46Identity) {
  // a^1 = a in the LCG arithmetic.
  EXPECT_DOUBLE_EQ(NpbRandom::ipow46(NpbRandom::kDefaultMultiplier, 1),
                   NpbRandom::kDefaultMultiplier);
  EXPECT_DOUBLE_EQ(NpbRandom::ipow46(NpbRandom::kDefaultMultiplier, 0), 1.0);
}

}  // namespace
}  // namespace ompmca
