#include "common/expected.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace ompmca {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.status(), Status::kSuccess);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::kTimeout);
  EXPECT_FALSE(r);
  EXPECT_EQ(r.status(), Status::kTimeout);
}

TEST(Result, ValueOr) {
  Result<int> good(7);
  Result<int> bad(Status::kInternal);
  EXPECT_EQ(good.value_or(-1), 7);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(Result, MoveOnlyType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r);
  auto p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

TEST(Result, CopySemantics) {
  Result<std::string> a(std::string("hello"));
  Result<std::string> b = a;
  EXPECT_EQ(*a, "hello");
  EXPECT_EQ(*b, "hello");
  Result<std::string> e(Status::kInvalidArgument);
  b = e;
  EXPECT_EQ(b.status(), Status::kInvalidArgument);
}

TEST(Result, MoveAssignErrorOverValue) {
  Result<std::string> a(std::string("x"));
  a = Result<std::string>(Status::kTimeout);
  EXPECT_FALSE(a);
  a = Result<std::string>(std::string("y"));
  EXPECT_EQ(*a, "y");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(Result, AssignOrReturnMacro) {
  auto f = [](Result<int> in) -> Status {
    OMPMCA_ASSIGN_OR_RETURN(int v, std::move(in));
    EXPECT_EQ(v, 3);
    return Status::kSuccess;
  };
  EXPECT_EQ(f(Result<int>(3)), Status::kSuccess);
  EXPECT_EQ(f(Result<int>(Status::kTimeout)), Status::kTimeout);
}

}  // namespace
}  // namespace ompmca
