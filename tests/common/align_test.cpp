#include "common/align.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ompmca {
namespace {

TEST(Align, AlignUp) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_up(65, 64), 128u);
  EXPECT_EQ(align_up(7, 8), 8u);
}

TEST(Padded, ElementsDoNotShareCacheLines) {
  std::vector<Padded<int>> v(4);
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    auto a = reinterpret_cast<std::uintptr_t>(&v[i].value);
    auto b = reinterpret_cast<std::uintptr_t>(&v[i + 1].value);
    EXPECT_GE(b - a, kCacheLineBytes);
  }
}

TEST(Padded, AccessOperators) {
  Padded<int> p;
  *p = 5;
  EXPECT_EQ(p.value, 5);
  Padded<std::vector<int>> pv;
  pv->push_back(1);
  EXPECT_EQ(pv.value.size(), 1u);
}

TEST(Padded, AlignmentIsCacheLine) {
  EXPECT_EQ(alignof(Padded<char>), kCacheLineBytes);
  EXPECT_GE(sizeof(Padded<char>), kCacheLineBytes);
}

}  // namespace
}  // namespace ompmca
