#include "common/status.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ompmca {
namespace {

TEST(Status, SuccessIsOk) {
  EXPECT_TRUE(ok(Status::kSuccess));
  EXPECT_FALSE(ok(Status::kInvalidArgument));
  EXPECT_FALSE(ok(Status::kTimeout));
}

TEST(Status, ToStringNamesSuccess) {
  EXPECT_EQ(to_string(Status::kSuccess), "SUCCESS");
}

TEST(Status, ToStringUsesMcaSpellings) {
  EXPECT_EQ(to_string(Status::kNodeNotInit), "ERR_NODE_NOTINIT");
  EXPECT_EQ(to_string(Status::kMutexLocked), "ERR_MUTEX_LOCKED");
  EXPECT_EQ(to_string(Status::kShmemNotAttached), "ERR_SHM_NOTATTACHED");
}

TEST(Status, EveryCodeHasAName) {
  // Walk the contiguous enum range; any gap would return ERR_UNKNOWN.
  for (int i = 0; i <= static_cast<int>(Status::kQueueDisabled); ++i) {
    auto name = to_string(static_cast<Status>(i));
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "ERR_UNKNOWN") << "status code " << i << " unnamed";
  }
}

TEST(Status, NamesMostlyDistinct) {
  // kNotInitialized and kNodeNotInit intentionally share a spelling; all
  // other codes must be distinguishable in logs.
  std::set<std::string_view> names;
  int total = 0;
  for (int i = 0; i <= static_cast<int>(Status::kQueueDisabled); ++i) {
    names.insert(to_string(static_cast<Status>(i)));
    ++total;
  }
  EXPECT_GE(static_cast<int>(names.size()), total - 1);
}

TEST(Status, ReturnIfErrorMacro) {
  auto passes = []() -> Status {
    OMPMCA_RETURN_IF_ERROR(Status::kSuccess);
    return Status::kSuccess;
  };
  auto fails = []() -> Status {
    OMPMCA_RETURN_IF_ERROR(Status::kTimeout);
    ADD_FAILURE() << "should have returned early";
    return Status::kSuccess;
  };
  EXPECT_EQ(passes(), Status::kSuccess);
  EXPECT_EQ(fails(), Status::kTimeout);
}

}  // namespace
}  // namespace ompmca
