#include "common/function_ref.hpp"

#include <gtest/gtest.h>

namespace ompmca {
namespace {

TEST(FunctionRef, CallsLambda) {
  int hits = 0;
  auto fn = [&hits](int x) { hits += x; };
  FunctionRef<void(int)> ref(fn);
  ref(3);
  ref(4);
  EXPECT_EQ(hits, 7);
}

TEST(FunctionRef, ReturnsValue) {
  auto fn = [](int a, int b) { return a * b; };
  FunctionRef<int(int, int)> ref(fn);
  EXPECT_EQ(ref(6, 7), 42);
}

int free_function(int x) { return x + 1; }

TEST(FunctionRef, WrapsFreeFunction) {
  FunctionRef<int(int)> ref(free_function);
  EXPECT_EQ(ref(1), 2);
}

TEST(FunctionRef, DefaultIsFalsy) {
  FunctionRef<void()> ref;
  EXPECT_FALSE(static_cast<bool>(ref));
}

TEST(FunctionRef, CopyIsShallow) {
  int calls = 0;
  auto fn = [&calls] { ++calls; };
  FunctionRef<void()> a(fn);
  FunctionRef<void()> b = a;
  a();
  b();
  EXPECT_EQ(calls, 2);
}

TEST(FunctionRef, MutableLambdaState) {
  int count = 0;
  auto fn = [&count]() mutable { return ++count; };
  FunctionRef<int()> ref(fn);
  EXPECT_EQ(ref(), 1);
  EXPECT_EQ(ref(), 2);
}

}  // namespace
}  // namespace ompmca
