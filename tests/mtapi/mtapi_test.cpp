#include "mtapi/mtapi.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

namespace ompmca::mtapi {
namespace {

constexpr JobId kJobAdd = 1;
constexpr JobId kJobRecord = 2;

TEST(MtapiActions, RegistryLifecycle) {
  TaskRuntime rt;
  EXPECT_FALSE(rt.job_registered(kJobAdd));
  ASSERT_EQ(rt.action_create(kJobAdd, [](const void*, std::size_t) {}),
            Status::kSuccess);
  EXPECT_TRUE(rt.job_registered(kJobAdd));
  EXPECT_EQ(rt.action_create(kJobAdd, [](const void*, std::size_t) {}),
            Status::kActionExists);
  EXPECT_EQ(rt.action_delete(kJobAdd), Status::kSuccess);
  EXPECT_FALSE(rt.job_registered(kJobAdd));
  EXPECT_EQ(rt.action_delete(kJobAdd), Status::kActionInvalid);
}

TEST(MtapiActions, NullActionRejected) {
  TaskRuntime rt;
  EXPECT_EQ(rt.action_create(kJobAdd, nullptr), Status::kActionInvalid);
}

TEST(MtapiTasks, StartUnknownJob) {
  TaskRuntime rt;
  EXPECT_EQ(rt.task_start(99, nullptr, 0).status(), Status::kJobInvalid);
}

TEST(MtapiTasks, TaskRunsWithArguments) {
  TaskRuntime rt;
  std::atomic<int> result{0};
  ASSERT_EQ(rt.action_create(kJobAdd,
                             [&](const void* args, std::size_t size) {
                               ASSERT_EQ(size, sizeof(int) * 2);
                               const int* v = static_cast<const int*>(args);
                               result.store(v[0] + v[1]);
                             }),
            Status::kSuccess);
  int args[2] = {20, 22};
  auto task = rt.task_start(kJobAdd, args, sizeof(args));
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ((*task)->wait(), Status::kSuccess);
  EXPECT_EQ((*task)->state(), TaskState::kCompleted);
  EXPECT_EQ(result.load(), 42);
}

TEST(MtapiTasks, ArgumentBlobIsCopied) {
  TaskRuntime rt;
  std::atomic<int> seen{0};
  ASSERT_EQ(rt.action_create(kJobAdd,
                             [&](const void* args, std::size_t) {
                               seen.store(*static_cast<const int*>(args));
                             }),
            Status::kSuccess);
  auto task = [&] {
    int local = 7;  // dies before the task may run
    return rt.task_start(kJobAdd, &local, sizeof(local));
  }();
  ASSERT_TRUE(task.has_value());
  (void)(*task)->wait();  // outcome checked via `seen` below
  EXPECT_EQ(seen.load(), 7);
}

TEST(MtapiTasks, ManyTasksAllExecute) {
  TaskRuntime rt(TaskRuntimeOptions{.workers = 4});
  std::atomic<int> count{0};
  ASSERT_EQ(rt.action_create(kJobRecord,
                             [&](const void*, std::size_t) {
                               count.fetch_add(1);
                             }),
            Status::kSuccess);
  std::vector<TaskHandle> tasks;
  for (int i = 0; i < 500; ++i) {
    auto t = rt.task_start(kJobRecord, nullptr, 0);
    ASSERT_TRUE(t.has_value());
    tasks.push_back(*t);
  }
  for (auto& t : tasks) EXPECT_EQ(t->wait(), Status::kSuccess);
  EXPECT_EQ(count.load(), 500);
  EXPECT_EQ(rt.tasks_executed(), 500u);
}

TEST(MtapiGroups, WaitAll) {
  TaskRuntime rt;
  std::atomic<int> done{0};
  ASSERT_EQ(rt.action_create(kJobRecord,
                             [&](const void*, std::size_t) {
                               done.fetch_add(1);
                             }),
            Status::kSuccess);
  auto group = rt.group_create();
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(rt.task_start(kJobRecord, nullptr, 0, group).has_value());
  }
  EXPECT_EQ(group->wait_all(), Status::kSuccess);
  EXPECT_EQ(done.load(), 64);
  EXPECT_EQ(group->pending(), 0u);
}

TEST(MtapiGroups, WaitAnyDrainsCompletions) {
  TaskRuntime rt;
  ASSERT_EQ(rt.action_create(kJobRecord, [](const void*, std::size_t) {}),
            Status::kSuccess);
  auto group = rt.group_create();
  const int kTasks = 10;
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(rt.task_start(kJobRecord, nullptr, 0, group).has_value());
  }
  std::set<Task*> seen;
  for (int i = 0; i < kTasks; ++i) {
    auto t = group->wait_any();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ((*t)->state(), TaskState::kCompleted);
    seen.insert(t->get());
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kTasks));
}

TEST(MtapiTasks, CancelPendingTask) {
  // A single worker busy on a long task guarantees a pending window.
  TaskRuntime rt(TaskRuntimeOptions{.workers = 1});
  std::atomic<bool> release{false};
  std::atomic<int> executed{0};
  ASSERT_EQ(rt.action_create(kJobAdd,
                             [&](const void*, std::size_t) {
                               while (!release.load()) {
                                 std::this_thread::yield();
                               }
                             }),
            Status::kSuccess);
  ASSERT_EQ(rt.action_create(kJobRecord,
                             [&](const void*, std::size_t) {
                               executed.fetch_add(1);
                             }),
            Status::kSuccess);
  auto blocker = rt.task_start(kJobAdd, nullptr, 0);
  ASSERT_TRUE(blocker.has_value());
  auto victim = rt.task_start(kJobRecord, nullptr, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ((*victim)->cancel(), Status::kSuccess);
  EXPECT_EQ((*victim)->wait(), Status::kTaskCanceled);
  release.store(true);
  (void)(*blocker)->wait();  // outcome checked via `executed` below
  EXPECT_EQ(executed.load(), 0);
}

TEST(MtapiQueues, OrderedExecution) {
  TaskRuntime rt(TaskRuntimeOptions{.workers = 4});
  std::vector<int> order;
  std::mutex mu;
  ASSERT_EQ(rt.action_create(kJobRecord,
                             [&](const void* args, std::size_t) {
                               std::lock_guard lk(mu);
                               order.push_back(*static_cast<const int*>(args));
                             }),
            Status::kSuccess);
  auto queue = rt.queue_create(kJobRecord);
  ASSERT_TRUE(queue.has_value());
  auto group = rt.group_create();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(rt.queue_enqueue(*queue, &i, sizeof(i), group).has_value());
  }
  EXPECT_EQ(group->wait_all(), Status::kSuccess);
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(MtapiQueues, DisabledQueueRefusesWork) {
  TaskRuntime rt;
  ASSERT_EQ(rt.action_create(kJobRecord, [](const void*, std::size_t) {}),
            Status::kSuccess);
  auto queue = rt.queue_create(kJobRecord);
  ASSERT_TRUE(queue.has_value());
  ASSERT_EQ((*queue)->disable(), Status::kSuccess);
  EXPECT_EQ(rt.queue_enqueue(*queue, nullptr, 0).status(),
            Status::kQueueDisabled);
  ASSERT_EQ((*queue)->enable(), Status::kSuccess);
  auto t = rt.queue_enqueue(*queue, nullptr, 0);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ((*t)->wait(), Status::kSuccess);
}

TEST(MtapiQueues, QueueForUnknownJob) {
  TaskRuntime rt;
  EXPECT_EQ(rt.queue_create(12345).status(), Status::kJobInvalid);
}

TEST(MtapiScheduler, WorkStealingBalancesLoad) {
  TaskRuntime rt(TaskRuntimeOptions{.workers = 4});
  std::atomic<int> count{0};
  ASSERT_EQ(rt.action_create(kJobRecord,
                             [&](const void*, std::size_t) {
                               count.fetch_add(1);
                               // Enough work that stealing has a window.
                               volatile double x = 0;
                               for (int i = 0; i < 2000; ++i) x = x + i;
                             }),
            Status::kSuccess);
  auto group = rt.group_create();
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(rt.task_start(kJobRecord, nullptr, 0, group).has_value());
  }
  EXPECT_EQ(group->wait_all(), Status::kSuccess);
  EXPECT_EQ(count.load(), 400);
}

TEST(MtapiScheduler, TwoQueuesRunIndependently) {
  TaskRuntime rt(TaskRuntimeOptions{.workers = 2});
  std::atomic<int> a{0}, b{0};
  ASSERT_EQ(rt.action_create(kJobAdd,
                             [&](const void*, std::size_t) {
                               a.fetch_add(1);
                             }),
            Status::kSuccess);
  ASSERT_EQ(rt.action_create(kJobRecord,
                             [&](const void*, std::size_t) {
                               b.fetch_add(1);
                             }),
            Status::kSuccess);
  auto qa = rt.queue_create(kJobAdd);
  auto qb = rt.queue_create(kJobRecord);
  auto group = rt.group_create();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(rt.queue_enqueue(*qa, nullptr, 0, group).has_value());
    ASSERT_TRUE(rt.queue_enqueue(*qb, nullptr, 0, group).has_value());
  }
  EXPECT_EQ(group->wait_all(), Status::kSuccess);
  EXPECT_EQ(a.load(), 50);
  EXPECT_EQ(b.load(), 50);
}

}  // namespace
}  // namespace ompmca::mtapi
