// Lint fixture (never compiled): a fully compliant file exercising every
// construct the linter inspects — the clean-tree run must exit 0.
#include <atomic>

#include "check/check.hpp"
#include "common/annotations.hpp"
#include "common/status.hpp"
#include "fault/fault.hpp"

namespace lint_fixture {

inline void drop_status_with_reason(ompmca::Status (*f)()) {
  (void)f();  // fixture: outcome deliberately irrelevant
}

inline void paired_hooks(void* obj, void* region, void* team) {
  OMPMCA_CHECK_ACQUIRE(check::LockClass::kMrapiMutex, obj, 0);
  OMPMCA_CHECK_RELEASE(check::LockClass::kMrapiMutex, obj);
  OMPMCA_CHECK_REGION_ENTER(region, team);
  OMPMCA_CHECK_REGION_EXIT(region, team);
}

inline bool recovered_point() {
  bool hit = OMPMCA_FAULT_POINT(kLintFixtureSite);
  if (!hit) OMPMCA_FAULT_RECOVERED(kLintFixtureSite, 1);
  return hit;
}

inline bool waived_point() {
  // fault-policy: caller-handled — fixture demonstrating the waiver form.
  return OMPMCA_FAULT_POINT(kLintFixtureWaived);
}

inline int justified_seq_cst(std::atomic<int>& a) {
  // seq_cst: fixture — demonstrates the justification-comment form.
  return a.load(std::memory_order_seq_cst);
}

// tsa: fixture — demonstrates the opt-out justification form.
inline void justified_opt_out() OMPMCA_NO_TSA;

}  // namespace lint_fixture
