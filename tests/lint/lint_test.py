#!/usr/bin/env python3
"""Tests for tools/lint/ompmca_lint.py.

Three assertions, mirroring the acceptance criteria:
  1. The seeded-violation fixture tree produces EXACTLY the expected
     findings, each reported once, with a non-zero exit.
  2. The clean fixture tree produces no findings and exit 0.
  3. The real repository tree lints clean (exit 0) — reintroducing a
     violation in src/ fails this test.
"""

import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
REPO = os.path.abspath(os.path.join(HERE, "..", ".."))
LINT = os.path.join(REPO, "tools", "lint", "ompmca_lint.py")

FAILURES = []


def run_lint(*args):
    proc = subprocess.run(
        [sys.executable, LINT, *args],
        capture_output=True, text=True, cwd=REPO)
    return proc


def check(name, cond, detail=""):
    if cond:
        print(f"  PASS {name}")
    else:
        print(f"  FAIL {name}: {detail}")
        FAILURES.append(name)


def test_seeded_tree():
    print("seeded fixture tree:")
    proc = run_lint("--root", os.path.join(HERE, "fixtures"),
                    "--subdirs", "src")
    lines = [l for l in proc.stdout.splitlines() if l.strip()]
    check("exit-nonzero", proc.returncode == 1,
          f"rc={proc.returncode} out={proc.stdout!r} err={proc.stderr!r}")

    seeded = os.path.join("src", "common", "seeded_violations.cpp")
    gomp = os.path.join("src", "gomp", "seeded_seq_cst.cpp")
    expected = [
        (seeded, "[ignored-status]"),
        (seeded, "[hook-parity]"),   # acquire without release
        (seeded, "[hook-parity]"),   # region enter/exit mismatch
        (seeded, "[fault-parity]"),
        (seeded, "[no-tsa]"),
        (gomp, "[seq-cst]"),
    ]
    for path, rule in set(expected):
        want = expected.count((path, rule))
        got = sum(1 for l in lines if path in l and rule in l)
        check(f"{rule}@{os.path.basename(path)}x{want}", got == want,
              f"expected {want}, linter reported {got}:\n{proc.stdout}")
    check("no-extra-findings", len(lines) == len(expected),
          f"expected {len(expected)} lines, got {len(lines)}:\n{proc.stdout}")
    # Exactly once: no duplicated finding lines.
    check("each-reported-once", len(set(lines)) == len(lines),
          f"duplicate lines in:\n{proc.stdout}")
    # The justified seq_cst control in the same file must NOT be reported.
    check("justified-seq-cst-silent",
          sum(1 for l in lines if "[seq-cst]" in l) == 1, proc.stdout)


def test_clean_tree():
    print("clean fixture tree:")
    proc = run_lint("--root", os.path.join(HERE, "fixtures_clean"),
                    "--subdirs", "src")
    check("exit-zero", proc.returncode == 0,
          f"rc={proc.returncode}:\n{proc.stdout}")
    check("no-output", proc.stdout.strip() == "", proc.stdout)


def test_repo_tree():
    print("repository tree:")
    proc = run_lint()
    check("repo-lints-clean", proc.returncode == 0,
          f"rc={proc.returncode}:\n{proc.stdout}")


def main():
    test_seeded_tree()
    test_clean_tree()
    test_repo_tree()
    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed")
        return 1
    print("all lint-test checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
