// Lint fixture: every rule ompmca-lint enforces is violated here exactly
// once.  This file is NEVER compiled — it exists so tests/lint/lint_test.py
// can assert the linter reports each seeded violation exactly once and
// exits non-zero.  Keep the seed count in sync with lint_test.py.
#include <atomic>

#include "check/check.hpp"
#include "common/status.hpp"
#include "fault/fault.hpp"

namespace lint_fixture {

// seed 1 [ignored-status]: a (void)-discarded call with no reason comment.
inline void drop_status(ompmca::Status (*f)()) {
  (void)f();
}

// seed 2 [hook-parity]: an acquire whose class never sees a release here.
inline void acquire_only(void* obj) {
  OMPMCA_CHECK_ACQUIRE(check::LockClass::kMrapiMutex, obj, 0);
}

// seed 3 [hook-parity]: a region enter with no matching exit.
inline void enter_only(void* region, void* team) {
  OMPMCA_CHECK_REGION_ENTER(region, team);
}

// seed 4 [fault-parity]: a fault point with no recovery hook anywhere in
// this fixture set and no fault-policy waiver.
inline bool unrecovered_point() {
  return OMPMCA_FAULT_POINT(kLintFixtureSite);
}

// seed 5 [no-tsa]: an opt-out with no tsa justification anywhere near it.

inline void naked_opt_out() OMPMCA_NO_TSA;

}  // namespace lint_fixture
