// Lint fixture (never compiled): one unjustified seq_cst in a gomp path.
#include <atomic>

namespace lint_fixture {

inline int unjustified(std::atomic<int>& a) {
  return a.load(std::memory_order_seq_cst);
}

inline int justified(std::atomic<int>& a) {
  // seq_cst: fixture control — this one must NOT be reported.
  return a.load(std::memory_order_seq_cst);
}

}  // namespace lint_fixture
