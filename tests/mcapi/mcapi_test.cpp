#include "mcapi/mcapi.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

namespace ompmca::mcapi {
namespace {

class McapiTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

TEST_F(McapiTest, EndpointLifecycle) {
  auto ep = endpoint_create(0, 1, 100);
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ((*ep)->address().port, 100u);
  EXPECT_EQ(Registry::instance().endpoint_count(), 1u);

  auto dup = endpoint_create(0, 1, 100);
  EXPECT_EQ(dup.status(), Status::kEndpointExists);

  auto found = endpoint_get(0, 1, 100);
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->get(), ep->get());

  EXPECT_EQ(endpoint_delete(*ep), Status::kSuccess);
  EXPECT_EQ(endpoint_get(0, 1, 100).status(), Status::kEndpointInvalid);
}

TEST_F(McapiTest, MessageRoundTrip) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());

  const char payload[] = "hello node 2";
  ASSERT_EQ(msg_send(*a, *b, payload, sizeof(payload)), Status::kSuccess);
  EXPECT_EQ((*b)->messages_available(), 1u);

  char buf[64] = {};
  auto n = (*b)->msg_recv(buf, sizeof(buf), mrapi::kTimeoutImmediate);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, sizeof(payload));
  EXPECT_STREQ(buf, payload);
}

TEST_F(McapiTest, MessagesFifoWithinPriority) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(msg_send(*a, *b, &i, sizeof(i)), Status::kSuccess);
  }
  for (int i = 0; i < 5; ++i) {
    int v = -1;
    ASSERT_TRUE((*b)->msg_recv(&v, sizeof(v), 0).has_value());
    EXPECT_EQ(v, i);
  }
}

TEST_F(McapiTest, HigherPriorityDeliveredFirst) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  int low = 1, high = 2;
  ASSERT_EQ(msg_send(*a, *b, &low, sizeof(low), /*priority=*/3),
            Status::kSuccess);
  ASSERT_EQ(msg_send(*a, *b, &high, sizeof(high), /*priority=*/0),
            Status::kSuccess);
  int v = 0;
  ASSERT_TRUE((*b)->msg_recv(&v, sizeof(v), 0).has_value());
  EXPECT_EQ(v, high);
  ASSERT_TRUE((*b)->msg_recv(&v, sizeof(v), 0).has_value());
  EXPECT_EQ(v, low);
}

TEST_F(McapiTest, RecvTimesOutWhenEmpty) {
  auto b = endpoint_create(0, 2, 1);
  char buf[8];
  EXPECT_EQ((*b)->msg_recv(buf, sizeof(buf), 10).status(), Status::kTimeout);
  // Immediate-empty is also a timeout: kRequestPending is reserved for
  // non-blocking request tokens, and a blocking recv must never leak it.
  EXPECT_EQ((*b)->msg_recv(buf, sizeof(buf), mrapi::kTimeoutImmediate)
                .status(),
            Status::kTimeout);
}

TEST_F(McapiTest, BlockingRecvWokenBySend) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  int received = 0;
  std::thread receiver([&] {
    int v = 0;
    auto n = (*b)->msg_recv(&v, sizeof(v), mrapi::kTimeoutInfinite);
    ASSERT_TRUE(n.has_value());
    received = v;
  });
  int payload = 77;
  ASSERT_EQ(msg_send(*a, *b, &payload, sizeof(payload)), Status::kSuccess);
  receiver.join();
  EXPECT_EQ(received, 77);
}

TEST_F(McapiTest, TruncationReported) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  char big[100] = {};
  ASSERT_EQ(msg_send(*a, *b, big, sizeof(big)), Status::kSuccess);
  char small[10];
  EXPECT_EQ((*b)->msg_recv(small, sizeof(small), 0).status(),
            Status::kMessageTruncated);
  // Message consumed despite truncation.
  EXPECT_EQ((*b)->messages_available(), 0u);
}

TEST_F(McapiTest, OversizeMessageRejected) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  std::vector<char> huge(Limits::kMaxMessageBytes + 1);
  EXPECT_EQ(msg_send(*a, *b, huge.data(), huge.size()),
            Status::kMessageTruncated);
}

TEST_F(McapiTest, NonBlockingRecvCompletesOnArrival) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  int slot = 0;
  auto req = (*b)->msg_recv_i(&slot, sizeof(slot));
  EXPECT_FALSE(req->test());
  int v = 123;
  ASSERT_EQ(msg_send(*a, *b, &v, sizeof(v)), Status::kSuccess);
  auto n = req->wait(1000);
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, sizeof(int));
  EXPECT_EQ(slot, 123);
}

TEST_F(McapiTest, NonBlockingRecvImmediateWhenQueued) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  int v = 9;
  ASSERT_EQ(msg_send(*a, *b, &v, sizeof(v)), Status::kSuccess);
  int slot = 0;
  auto req = (*b)->msg_recv_i(&slot, sizeof(slot));
  EXPECT_TRUE(req->test());
  EXPECT_EQ(slot, 9);
}

TEST_F(McapiTest, CanceledRequestSkipped) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  int slot1 = 0, slot2 = 0;
  auto r1 = (*b)->msg_recv_i(&slot1, sizeof(slot1));
  auto r2 = (*b)->msg_recv_i(&slot2, sizeof(slot2));
  ASSERT_EQ(r1->cancel(), Status::kSuccess);
  EXPECT_EQ(r1->wait(0).status(), Status::kRequestCanceled);
  int v = 5;
  ASSERT_EQ(msg_send(*a, *b, &v, sizeof(v)), Status::kSuccess);
  ASSERT_TRUE(r2->wait(1000).has_value());
  EXPECT_EQ(slot2, 5);
  EXPECT_EQ(slot1, 0);
}

TEST_F(McapiTest, FiniteTimeoutExpiryMarksRequestDead) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  int slot = 0;
  auto req = (*b)->msg_recv_i(&slot, sizeof(slot));
  EXPECT_EQ(req->wait(10).status(), Status::kTimeout);
  // The request died at expiry: a later send must not write into its
  // buffer (the caller may already have reclaimed it).
  int v = 41;
  ASSERT_EQ(msg_send(*a, *b, &v, sizeof(v)), Status::kSuccess);
  EXPECT_EQ(slot, 0);
  EXPECT_EQ((*b)->messages_available(), 1u);
  // The expired request stays dead and keeps reporting the timeout.
  EXPECT_EQ(req->wait(0).status(), Status::kTimeout);
  // The undelivered message goes to the next receiver instead.
  int got = 0;
  ASSERT_TRUE((*b)->msg_recv(&got, sizeof(got), 0).has_value());
  EXPECT_EQ(got, 41);
}

TEST_F(McapiTest, CancelVsDeliveryExactlyOneWins) {
  auto a = endpoint_create(0, 1, 1);
  auto b = endpoint_create(0, 2, 1);
  for (int round = 0; round < 200; ++round) {
    int slot = -1;
    auto req = (*b)->msg_recv_i(&slot, sizeof(slot));
    std::thread sender([&] {
      int v = round;
      EXPECT_EQ(msg_send(*a, *b, &v, sizeof(v)), Status::kSuccess);
    });
    Status c = req->cancel();
    sender.join();
    if (c == Status::kSuccess) {
      // Cancel won: the request reports canceled, the buffer is untouched
      // and the message waits for the next receiver.
      EXPECT_EQ(req->wait(0).status(), Status::kRequestCanceled);
      EXPECT_EQ(slot, -1);
      ASSERT_EQ((*b)->messages_available(), 1u);
      int drain = 0;
      ASSERT_TRUE((*b)->msg_recv(&drain, sizeof(drain), 0).has_value());
      EXPECT_EQ(drain, round);
    } else {
      // Delivery won: cancel reports the request already completed and the
      // message was consumed into the buffer.
      EXPECT_EQ(c, Status::kRequestInvalid);
      ASSERT_TRUE(req->wait(0).has_value());
      EXPECT_EQ(slot, round);
      EXPECT_EQ((*b)->messages_available(), 0u);
    }
  }
}

// --- packet channels -----------------------------------------------------------

TEST_F(McapiTest, PacketChannelFifo) {
  auto tx = endpoint_create(0, 1, 10);
  auto rx = endpoint_create(0, 2, 10);
  ASSERT_EQ(channel_connect(ChannelType::kPacket, *tx, *rx),
            Status::kSuccess);
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(pkt_send(*tx, &i, sizeof(i)), Status::kSuccess);
  }
  for (int i = 0; i < 16; ++i) {
    int v = -1;
    auto n = pkt_recv(*rx, &v, sizeof(v));
    ASSERT_TRUE(n.has_value());
    EXPECT_EQ(v, i);
  }
}

TEST_F(McapiTest, ChannelDirectionEnforced) {
  auto tx = endpoint_create(0, 1, 10);
  auto rx = endpoint_create(0, 2, 10);
  ASSERT_EQ(channel_connect(ChannelType::kPacket, *tx, *rx),
            Status::kSuccess);
  int v;
  EXPECT_EQ(pkt_send(*rx, &v, sizeof(v)), Status::kChannelTypeMismatch);
  EXPECT_EQ(pkt_recv(*tx, &v, sizeof(v), 0).status(),
            Status::kChannelTypeMismatch);
}

TEST_F(McapiTest, ConnectedEndpointRefusesDatagrams) {
  auto tx = endpoint_create(0, 1, 10);
  auto rx = endpoint_create(0, 2, 10);
  auto other = endpoint_create(0, 3, 10);
  ASSERT_EQ(channel_connect(ChannelType::kPacket, *tx, *rx),
            Status::kSuccess);
  int v = 1;
  EXPECT_EQ(msg_send(*other, *rx, &v, sizeof(v)), Status::kChannelOpen);
}

TEST_F(McapiTest, DoubleConnectRejected) {
  auto tx = endpoint_create(0, 1, 10);
  auto rx = endpoint_create(0, 2, 10);
  auto rx2 = endpoint_create(0, 3, 10);
  ASSERT_EQ(channel_connect(ChannelType::kPacket, *tx, *rx),
            Status::kSuccess);
  EXPECT_EQ(channel_connect(ChannelType::kPacket, *tx, *rx2),
            Status::kChannelOpen);
}

TEST_F(McapiTest, ChannelCloseBothSides) {
  auto tx = endpoint_create(0, 1, 10);
  auto rx = endpoint_create(0, 2, 10);
  ASSERT_EQ(channel_connect(ChannelType::kPacket, *tx, *rx),
            Status::kSuccess);
  ASSERT_EQ(channel_close(*tx), Status::kSuccess);
  EXPECT_EQ((*tx)->channel_type(), ChannelType::kNone);
  EXPECT_EQ((*rx)->channel_type(), ChannelType::kNone);
  // Reconnect is now allowed.
  EXPECT_EQ(channel_connect(ChannelType::kScalar, *tx, *rx),
            Status::kSuccess);
}

// --- scalar channels --------------------------------------------------------------

TEST_F(McapiTest, ScalarChannelRoundTrip) {
  auto tx = endpoint_create(0, 1, 20);
  auto rx = endpoint_create(0, 2, 20);
  ASSERT_EQ(channel_connect(ChannelType::kScalar, *tx, *rx),
            Status::kSuccess);
  ASSERT_EQ(scalar_send(*tx, 0xDEADBEEFull, 8), Status::kSuccess);
  ASSERT_EQ(scalar_send(*tx, 42, 4), Status::kSuccess);
  auto v1 = scalar_recv(*rx, 8);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(*v1, 0xDEADBEEFull);
  auto v2 = scalar_recv(*rx, 4);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v2, 42u);
}

TEST_F(McapiTest, ScalarWidthMismatchDoesNotConsume) {
  auto tx = endpoint_create(0, 1, 20);
  auto rx = endpoint_create(0, 2, 20);
  ASSERT_EQ(channel_connect(ChannelType::kScalar, *tx, *rx),
            Status::kSuccess);
  ASSERT_EQ(scalar_send(*tx, 7, 4), Status::kSuccess);
  EXPECT_EQ(scalar_recv(*rx, 8, 0).status(), Status::kChannelTypeMismatch);
  EXPECT_EQ((*rx)->scalars_available(), 1u);
  auto v = scalar_recv(*rx, 4);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7u);
}

TEST_F(McapiTest, ScalarInvalidWidthRejected) {
  auto tx = endpoint_create(0, 1, 20);
  auto rx = endpoint_create(0, 2, 20);
  ASSERT_EQ(channel_connect(ChannelType::kScalar, *tx, *rx),
            Status::kSuccess);
  EXPECT_EQ(scalar_send(*tx, 1, 3), Status::kInvalidArgument);
}

TEST_F(McapiTest, ProducerConsumerStress) {
  auto tx = endpoint_create(0, 1, 30);
  auto rx = endpoint_create(0, 2, 30);
  ASSERT_EQ(channel_connect(ChannelType::kPacket, *tx, *rx),
            Status::kSuccess);
  const int kCount = 5000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (pkt_send(*tx, &i, sizeof(i)) == Status::kMessageLimit) {
        std::this_thread::yield();
      }
    }
  });
  long sum = 0;
  for (int i = 0; i < kCount; ++i) {
    int v = 0;
    auto n = pkt_recv(*rx, &v, sizeof(v));
    ASSERT_TRUE(n.has_value());
    sum += v;
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long>(kCount) * (kCount - 1) / 2);
}

}  // namespace
}  // namespace ompmca::mcapi
