#include "epcc/schedbench.hpp"

#include <gtest/gtest.h>

namespace ompmca::epcc {
namespace {

gomp::Runtime make_runtime() {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  return gomp::Runtime(opts);
}

Schedbench::Options quick() {
  Schedbench::Options o;
  o.outer_reps = 2;
  o.inner_reps = 4;
  o.delay_length = 8;
  o.iters_per_thread = 32;
  return o;
}

TEST(Schedbench, MeasurementPopulated) {
  gomp::Runtime rt = make_runtime();
  Schedbench bench(&rt, quick());
  auto m = bench.measure({gomp::Schedule::kDynamic, 1}, 2);
  EXPECT_EQ(m.nthreads, 2u);
  EXPECT_GT(m.mean_us, 0.0);
  EXPECT_GT(m.reference_us, 0.0);
  EXPECT_EQ(m.spec.kind, gomp::Schedule::kDynamic);
}

TEST(Schedbench, SweepCoversGrid) {
  gomp::Runtime rt = make_runtime();
  Schedbench bench(&rt, quick());
  auto rows = bench.sweep(2, {1, 8});
  EXPECT_EQ(rows.size(), 3u * 2u);  // 3 kinds x 2 chunks
}

TEST(Schedbench, AllKindsMeasurable) {
  gomp::Runtime rt = make_runtime();
  Schedbench bench(&rt, quick());
  for (gomp::Schedule kind :
       {gomp::Schedule::kStatic, gomp::Schedule::kDynamic,
        gomp::Schedule::kGuided}) {
    auto m = bench.measure({kind, 4}, 3);
    EXPECT_GT(m.mean_us, 0.0) << to_string(kind);
  }
}

}  // namespace
}  // namespace ompmca::epcc
