#include "epcc/syncbench.hpp"

#include <gtest/gtest.h>

#include "common/time.hpp"

namespace ompmca::epcc {
namespace {

gomp::Runtime make_runtime(gomp::BackendKind kind) {
  gomp::RuntimeOptions opts;
  opts.backend = kind;
  gomp::Icvs icvs;
  icvs.num_threads = 4;
  opts.icvs = icvs;
  return gomp::Runtime(opts);
}

SyncbenchOptions quick_options() {
  SyncbenchOptions o;
  o.outer_reps = 3;
  o.inner_reps = 8;
  o.delay_length = 32;
  return o;
}

TEST(Syncbench, DirectiveNames) {
  EXPECT_EQ(to_string(Directive::kParallel), "PARALLEL");
  EXPECT_EQ(to_string(Directive::kParallelFor), "PARALLEL FOR");
  EXPECT_EQ(to_string(Directive::kReduction), "REDUCTION");
  EXPECT_EQ(to_string(Directive::kForDynamic), "FOR DYNAMIC");
  // The seven Table-I rows plus FOR DYNAMIC (the steal-scheduler probe).
  EXPECT_EQ(kAllDirectives.size(), 8u);
}

TEST(Syncbench, DelayConsumesTime) {
  // delay() must scale with its length (otherwise every overhead is noise).
  double t0 = monotonic_seconds();
  for (int i = 0; i < 20000; ++i) Syncbench::delay(64);
  double short_len = monotonic_seconds() - t0;
  t0 = monotonic_seconds();
  for (int i = 0; i < 20000; ++i) Syncbench::delay(640);
  double long_len = monotonic_seconds() - t0;
  EXPECT_GT(long_len, short_len);
}

TEST(Syncbench, MeasurementFieldsPopulated) {
  gomp::Runtime rt = make_runtime(gomp::BackendKind::kNative);
  Syncbench bench(&rt, quick_options());
  Measurement m = bench.measure(Directive::kBarrier, 2);
  EXPECT_TRUE(m.valid());
  EXPECT_EQ(m.directive, Directive::kBarrier);
  EXPECT_EQ(m.nthreads, 2u);
  EXPECT_GT(m.mean_us, 0.0);
  EXPECT_GT(m.reference_us, 0.0);
  EXPECT_GE(m.sd_us, 0.0);
  // Constructs cost more than the bare delay loop.
  EXPECT_GT(m.mean_us, m.reference_us);
}

TEST(Syncbench, AllDirectivesMeasurable) {
  gomp::Runtime rt = make_runtime(gomp::BackendKind::kNative);
  Syncbench bench(&rt, quick_options());
  for (Directive d : kAllDirectives) {
    Measurement m = bench.measure(d, 2);
    EXPECT_GT(m.mean_us, 0.0) << to_string(d);
  }
}

TEST(Syncbench, SweepCoversGrid) {
  gomp::Runtime rt = make_runtime(gomp::BackendKind::kNative);
  Syncbench bench(&rt, quick_options());
  auto measurements = bench.sweep({2, 4});
  EXPECT_EQ(measurements.size(), kAllDirectives.size() * 2);
}

TEST(Syncbench, RelativeOverheadsProduceFullTable) {
  gomp::Runtime native = make_runtime(gomp::BackendKind::kNative);
  gomp::Runtime mca = make_runtime(gomp::BackendKind::kMca);
  auto cells = relative_overheads(&native, &mca, {2, 4}, quick_options());
  ASSERT_EQ(cells.size(), kAllDirectives.size() * 2);
  for (const auto& cell : cells) {
    EXPECT_GT(cell.ratio, 0.0) << to_string(cell.directive);
    // On identical hardware under identical load the two runtimes must stay
    // within an order of magnitude; tighter bounds are the bench's job.
    EXPECT_LT(cell.ratio, 10.0) << to_string(cell.directive);
  }
}

TEST(Syncbench, McaRuntimeMeasurableAtBoardWidth) {
  gomp::Runtime mca = make_runtime(gomp::BackendKind::kMca);
  Syncbench bench(&mca, quick_options());
  Measurement m = bench.measure(Directive::kParallel, 8);
  EXPECT_GT(m.mean_us, 0.0);
}

}  // namespace
}  // namespace ompmca::epcc
