// The validation battery: directive semantics expressed as predicates over
// a runtime, so both the conformance tests (must pass) and the
// fault-injection tests (must fail against a seeded-broken backend) can run
// the same checks.
#pragma once

#include <string>

#include "gomp/gomp.hpp"

namespace ompmca::validation {

bool check_parallel(gomp::Runtime& rt);
bool check_for(gomp::Runtime& rt);
bool check_barrier(gomp::Runtime& rt);
bool check_single(gomp::Runtime& rt);
bool check_master(gomp::Runtime& rt);
bool check_critical(gomp::Runtime& rt);
bool check_reduction(gomp::Runtime& rt);
bool check_sections(gomp::Runtime& rt);
bool check_ordered(gomp::Runtime& rt);
bool check_tasks(gomp::Runtime& rt);
bool check_lock(gomp::Runtime& rt);

struct BatteryResult {
  struct Entry {
    std::string name;
    bool passed;
  };
  std::vector<Entry> entries;

  bool all_passed() const {
    for (const auto& e : entries) {
      if (!e.passed) return false;
    }
    return true;
  }
  std::vector<std::string> failures() const {
    std::vector<std::string> out;
    for (const auto& e : entries) {
      if (!e.passed) out.push_back(e.name);
    }
    return out;
  }
  std::string summary() const {
    std::string s;
    for (const auto& e : entries) {
      s += e.name;
      s += e.passed ? ": pass\n" : ": FAIL\n";
    }
    return s;
  }
};

/// Runs every check; never throws, never hangs (bounded iteration counts).
BatteryResult run_battery(gomp::Runtime& rt);

}  // namespace ompmca::validation
