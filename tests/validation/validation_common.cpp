#include "validation_common.hpp"

#include <atomic>
#include <thread>
#include <numeric>
#include <set>
#include <vector>

namespace ompmca::validation {

using gomp::ParallelContext;

bool check_parallel(gomp::Runtime& rt) {
  std::atomic<int> count{0};
  std::mutex mu;
  std::set<unsigned> tids;
  unsigned team = 0;
  rt.parallel([&](ParallelContext& ctx) {
    count.fetch_add(1);
    std::lock_guard lk(mu);
    tids.insert(ctx.thread_num());
    team = ctx.num_threads();
  });
  return count.load() == static_cast<int>(team) && tids.size() == team &&
         *tids.begin() == 0 && *tids.rbegin() == team - 1;
}

bool check_for(gomp::Runtime& rt) {
  const long n = 4321;
  bool ok_all = true;
  for (gomp::Schedule kind :
       {gomp::Schedule::kStatic, gomp::Schedule::kDynamic,
        gomp::Schedule::kGuided}) {
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    rt.parallel([&](ParallelContext& ctx) {
      ctx.for_loop(
          0, n,
          [&](long lo, long hi) {
            for (long i = lo; i < hi; ++i) hits[i].fetch_add(1);
          },
          gomp::ScheduleSpec{kind, 3});
    });
    for (long i = 0; i < n; ++i) ok_all &= hits[i].load() == 1;
  }
  return ok_all;
}

bool check_barrier(gomp::Runtime& rt) {
  // Flags written before the barrier must be visible after it.
  const int kRounds = 20;
  std::vector<int> stage(rt.max_threads(), 0);
  std::atomic<bool> violation{false};
  rt.parallel([&](ParallelContext& ctx) {
    for (int round = 1; round <= kRounds; ++round) {
      stage[ctx.thread_num()] = round;
      ctx.barrier();
      for (unsigned t = 0; t < ctx.num_threads(); ++t) {
        if (stage[t] < round) violation.store(true);
      }
      ctx.barrier();
    }
  });
  return !violation.load();
}

bool check_single(gomp::Runtime& rt) {
  std::atomic<int> executions{0};
  std::atomic<bool> seen_late{false};
  rt.parallel([&](ParallelContext& ctx) {
    for (int i = 0; i < 25; ++i) {
      ctx.single([&] { executions.fetch_add(1); });
      // After single's implicit barrier at least i+1 executions happened
      // (a fast teammate may already have won single i+1, so not exact).
      if (executions.load() < i + 1) seen_late.store(true);
    }
  });
  return executions.load() == 25 && !seen_late.load();
}

bool check_master(gomp::Runtime& rt) {
  std::atomic<int> count{0};
  std::atomic<unsigned> executor{99};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.master([&] {
      count.fetch_add(1);
      executor.store(ctx.thread_num());
    });
  });
  return count.load() == 1 && executor.load() == 0;
}

bool check_critical(gomp::Runtime& rt) {
  // The paper's war story: a broken critical lets increments race.
  // A non-atomic read-modify-write on a shared counter is the canonical
  // detector.  The counter is a relaxed atomic so the *test itself* stays
  // defined behaviour (and TSan-clean) when the seeded-bug battery runs it
  // with a deliberately broken critical: lost updates — separate load and
  // store with a window between them — still happen exactly as with a plain
  // long, only the torn-access UB is gone.
  std::atomic<long> counter{0};
  const int kIters = 400;
  rt.parallel([&](ParallelContext& ctx) {
    for (int i = 0; i < kIters; ++i) {
      ctx.critical([&] {
        // Read-modify-write with a scheduling point in the window: on a
        // single-CPU host a plain data race almost never manifests (threads
        // are not preempted inside short windows), but the yield hands the
        // CPU to a sibling mid-update, so a broken critical loses updates
        // massively while a working one is unaffected.
        long v = counter.load(std::memory_order_relaxed);
        std::this_thread::yield();
        counter.store(v + 1, std::memory_order_relaxed);
      });
    }
  });
  return counter.load() == static_cast<long>(kIters) * rt.max_threads();
}

bool check_reduction(gomp::Runtime& rt) {
  const long n = 10000;
  double result = 0;
  rt.parallel([&](ParallelContext& ctx) {
    double local = 0;
    ctx.for_loop(
        1, n + 1,
        [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) local += static_cast<double>(i);
        },
        {}, /*nowait=*/true);
    double sum = ctx.reduce_sum(local);
    if (ctx.thread_num() == 0) result = sum;
  });
  return result == static_cast<double>(n) * (n + 1) / 2.0;
}

bool check_sections(gomp::Runtime& rt) {
  std::atomic<int> a{0}, b{0}, c{0}, d{0};
  rt.parallel([&](ParallelContext& ctx) {
    auto s1 = [&] { a.fetch_add(1); };
    auto s2 = [&] { b.fetch_add(1); };
    auto s3 = [&] { c.fetch_add(1); };
    auto s4 = [&] { d.fetch_add(1); };
    ctx.sections({FunctionRef<void()>(s1), FunctionRef<void()>(s2),
                  FunctionRef<void()>(s3), FunctionRef<void()>(s4)});
  });
  return a.load() == 1 && b.load() == 1 && c.load() == 1 && d.load() == 1;
}

bool check_ordered(gomp::Runtime& rt) {
  std::vector<long> order;
  rt.parallel([&](ParallelContext& ctx) {
    ctx.for_loop_ordered(
        0, 60,
        [&](long lo, long hi) {
          for (long i = lo; i < hi; ++i) {
            ctx.ordered(i, [&] { order.push_back(i); });
          }
        },
        gomp::ScheduleSpec{gomp::Schedule::kDynamic, 1});
  });
  if (order.size() != 60u) return false;
  for (long i = 0; i < 60; ++i) {
    if (order[static_cast<std::size_t>(i)] != i) return false;
  }
  return true;
}

bool check_tasks(gomp::Runtime& rt) {
  std::atomic<int> done{0};
  std::atomic<bool> early{false};
  rt.parallel([&](ParallelContext& ctx) {
    ctx.single([&] {
      for (int i = 0; i < 50; ++i) {
        ctx.task([&done] { done.fetch_add(1); });
      }
      ctx.taskwait();
      if (done.load() != 50) early.store(true);
    });
  });
  return done.load() == 50 && !early.load();
}

bool check_lock(gomp::Runtime& rt) {
  gomp::OmpLock lock(rt);
  std::atomic<long> counter{0};  // relaxed atomic: see check_critical
  const int kIters = 400;
  rt.parallel([&](ParallelContext&) {
    for (int i = 0; i < kIters; ++i) {
      lock.set();
      long v = counter.load(std::memory_order_relaxed);
      std::this_thread::yield();  // see check_critical
      counter.store(v + 1, std::memory_order_relaxed);
      lock.unset();
    }
  });
  return counter.load() == static_cast<long>(kIters) * rt.max_threads();
}

BatteryResult run_battery(gomp::Runtime& rt) {
  BatteryResult r;
  r.entries.push_back({"parallel", check_parallel(rt)});
  r.entries.push_back({"for", check_for(rt)});
  r.entries.push_back({"barrier", check_barrier(rt)});
  r.entries.push_back({"single", check_single(rt)});
  r.entries.push_back({"master", check_master(rt)});
  r.entries.push_back({"critical", check_critical(rt)});
  r.entries.push_back({"reduction", check_reduction(rt)});
  r.entries.push_back({"sections", check_sections(rt)});
  r.entries.push_back({"ordered", check_ordered(rt)});
  r.entries.push_back({"tasks", check_tasks(rt)});
  r.entries.push_back({"lock", check_lock(rt)});
  return r;
}

}  // namespace ompmca::validation
