// Fault injection: reproduces the paper's §6A anecdote — "the results
// helped determine some bugs ... such as tracing potential issues with a
// non-functional synchronization primitive in MCA-libGOMP that caused an
// OpenMP critical construct to fail."
//
// A backend whose mutexes are deliberately broken is injected under the
// unmodified runtime core; the validation battery must catch it (critical
// and lock checks fail) while the unsynchronised directives still pass —
// exactly the signature that pointed the authors at their mutex mapping.
#include <gtest/gtest.h>

#include <algorithm>

#include "gomp/backend_native.hpp"
#include "validation_common.hpp"

namespace ompmca::validation {
namespace {

/// A mutex that silently provides no exclusion (the seeded bug).
class NoOpMutex final : public gomp::BackendMutex {
 public:
  void lock() override {}
  void unlock() override {}
  bool try_lock() override { return true; }
};

/// Native backend with broken create_mutex.
class BrokenMutexBackend final : public gomp::SystemBackend {
 public:
  BrokenMutexBackend() : inner_(platform::Topology::t4240rdb()) {}

  std::string_view name() const override { return "broken-mutex"; }
  Status launch_thread(unsigned index, std::function<void()> fn) override {
    return inner_.launch_thread(index, std::move(fn));
  }
  Status join_thread(unsigned index) override {
    return inner_.join_thread(index);
  }
  void* allocate(std::size_t bytes) override { return inner_.allocate(bytes); }
  void deallocate(void* p) override { inner_.deallocate(p); }
  std::unique_ptr<gomp::BackendMutex> create_mutex() override {
    return std::make_unique<NoOpMutex>();
  }
  unsigned num_procs() override { return inner_.num_procs(); }

 private:
  gomp::NativeBackend inner_;
};

gomp::Runtime make_broken_runtime() {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 8;
  opts.icvs = icvs;
  opts.backend_factory = [] {
    return std::make_unique<BrokenMutexBackend>();
  };
  return gomp::Runtime(opts);
}

TEST(SeededBug, ValidationCatchesBrokenCritical) {
  gomp::Runtime rt = make_broken_runtime();
  BatteryResult r = run_battery(rt);
  // The battery must flag the failure...
  EXPECT_FALSE(r.all_passed());
  auto failures = r.failures();
  // ...and the failing checks must be exactly the mutex-backed ones, which
  // is what localises the bug to the synchronisation mapping (§5B.3).
  EXPECT_TRUE(std::find(failures.begin(), failures.end(), "critical") !=
              failures.end())
      << r.summary();
  for (const auto& name : failures) {
    EXPECT_TRUE(name == "critical" || name == "lock")
        << "unexpected failure: " << name << "\n"
        << r.summary();
  }
}

TEST(SeededBug, UnsynchronisedDirectivesUnaffected) {
  gomp::Runtime rt = make_broken_runtime();
  EXPECT_TRUE(check_parallel(rt));
  EXPECT_TRUE(check_for(rt));
  EXPECT_TRUE(check_barrier(rt));
  EXPECT_TRUE(check_single(rt));
  EXPECT_TRUE(check_reduction(rt));
}

TEST(SeededBug, HealthyBackendPassesSameBattery) {
  // Control: the identical battery over the real backends is green
  // (otherwise the detector proves nothing).
  for (auto kind : {gomp::BackendKind::kNative, gomp::BackendKind::kMca}) {
    gomp::RuntimeOptions opts;
    opts.backend = kind;
    gomp::Icvs icvs;
    icvs.num_threads = 8;
    opts.icvs = icvs;
    gomp::Runtime rt(opts);
    BatteryResult r = run_battery(rt);
    EXPECT_TRUE(r.all_passed()) << r.summary();
  }
}

}  // namespace
}  // namespace ompmca::validation
