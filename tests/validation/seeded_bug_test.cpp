// Fault injection: reproduces the paper's §6A anecdote — "the results
// helped determine some bugs ... such as tracing potential issues with a
// non-functional synchronization primitive in MCA-libGOMP that caused an
// OpenMP critical construct to fail."
//
// A backend whose mutexes are deliberately broken is injected under the
// unmodified runtime core; the validation battery must catch it (critical
// and lock checks fail) while the unsynchronised directives still pass —
// exactly the signature that pointed the authors at their mutex mapping.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "gomp/backend_native.hpp"
#include "obs/telemetry.hpp"
#include "validation_common.hpp"

namespace ompmca::validation {
namespace {

/// A mutex that silently provides no exclusion (the seeded bug).
class NoOpMutex final : public gomp::BackendMutex {
 public:
  void lock() override {}
  void unlock() override {}
  bool try_lock() override { return true; }
};

/// Native backend with broken create_mutex.
class BrokenMutexBackend final : public gomp::SystemBackend {
 public:
  BrokenMutexBackend() : inner_(platform::Topology::t4240rdb()) {}

  std::string_view name() const override { return "broken-mutex"; }
  Status launch_thread(unsigned index, std::function<void()> fn) override {
    return inner_.launch_thread(index, std::move(fn));
  }
  Status join_thread(unsigned index) override {
    return inner_.join_thread(index);
  }
  void* allocate(std::size_t bytes) override { return inner_.allocate(bytes); }
  void deallocate(void* p) override { inner_.deallocate(p); }
  std::unique_ptr<gomp::BackendMutex> create_mutex() override {
    return std::make_unique<NoOpMutex>();
  }
  unsigned num_procs() override { return inner_.num_procs(); }

 private:
  gomp::NativeBackend inner_;
};

gomp::Runtime make_broken_runtime() {
  gomp::RuntimeOptions opts;
  gomp::Icvs icvs;
  icvs.num_threads = 8;
  opts.icvs = icvs;
  opts.backend_factory = [] {
    return std::make_unique<BrokenMutexBackend>();
  };
  return gomp::Runtime(opts);
}

TEST(SeededBug, ValidationCatchesBrokenCritical) {
  gomp::Runtime rt = make_broken_runtime();
  BatteryResult r = run_battery(rt);
  // The battery must flag the failure...
  EXPECT_FALSE(r.all_passed());
  auto failures = r.failures();
  // ...and the failing checks must be exactly the mutex-backed ones, which
  // is what localises the bug to the synchronisation mapping (§5B.3).
  EXPECT_TRUE(std::find(failures.begin(), failures.end(), "critical") !=
              failures.end())
      << r.summary();
  for (const auto& name : failures) {
    EXPECT_TRUE(name == "critical" || name == "lock")
        << "unexpected failure: " << name << "\n"
        << r.summary();
  }
}

TEST(SeededBug, UnsynchronisedDirectivesUnaffected) {
  gomp::Runtime rt = make_broken_runtime();
  EXPECT_TRUE(check_parallel(rt));
  EXPECT_TRUE(check_for(rt));
  EXPECT_TRUE(check_barrier(rt));
  EXPECT_TRUE(check_single(rt));
  EXPECT_TRUE(check_reduction(rt));
}

// The telemetry layer must observe *real* lock behaviour: hammering an
// unnamed critical from 8 threads produces contention events on a working
// mutex, while the seeded no-op mutex — whose try_lock always "succeeds" —
// produces exactly zero.  This is the counter-based variant of the §6A bug
// hunt: a synchronisation primitive that never contends under load is not
// synchronising.
TEST(SeededBug, TelemetrySeesZeroContentionOnBrokenMutex) {
  constexpr int kIters = 8;
  auto hammer_critical = [](gomp::Runtime& rt) {
    rt.parallel([](gomp::ParallelContext& ctx) {
      // Line the team up so every thread reaches the critical loop with the
      // others still active in it.
      ctx.barrier();
      for (int i = 0; i < kIters; ++i) {
        ctx.critical([] {
          // Sleep while holding the lock: the holder blocks, the scheduler
          // runs a sibling, and that sibling's try_lock must fail.  This
          // makes contention on a real mutex deterministic even on a
          // single-core host, where spinning inside the lock would not be
          // (a thread is almost never preempted mid-section).
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        });
      }
    });
  };

  std::uint64_t broken_contended = 0;
  {
    obs::ScopedEnable telemetry;
    gomp::Runtime rt = make_broken_runtime();
    hammer_critical(rt);
    obs::Snapshot s = obs::Registry::instance().snapshot();
    EXPECT_EQ(s.counter(obs::Counter::kGompCritical), 8u * static_cast<unsigned>(kIters));
    broken_contended = s.counter(obs::Counter::kGompCriticalContended);
  }

  std::uint64_t native_contended = 0;
  {
    obs::ScopedEnable telemetry;
    gomp::RuntimeOptions opts;
    gomp::Icvs icvs;
    icvs.num_threads = 8;
    opts.icvs = icvs;
    gomp::Runtime rt(opts);
    hammer_critical(rt);
    obs::Snapshot s = obs::Registry::instance().snapshot();
    EXPECT_EQ(s.counter(obs::Counter::kGompCritical), 8u * static_cast<unsigned>(kIters));
    native_contended = s.counter(obs::Counter::kGompCriticalContended);
  }

  // A no-op mutex can never block, so zero contention is deterministic;
  // a functional mutex under this load shows plenty.
  EXPECT_EQ(broken_contended, 0u);
  EXPECT_GT(native_contended, 0u);
}

TEST(SeededBug, HealthyBackendPassesSameBattery) {
  // Control: the identical battery over the real backends is green
  // (otherwise the detector proves nothing).
  for (auto kind : {gomp::BackendKind::kNative, gomp::BackendKind::kMca}) {
    gomp::RuntimeOptions opts;
    opts.backend = kind;
    gomp::Icvs icvs;
    icvs.num_threads = 8;
    opts.icvs = icvs;
    gomp::Runtime rt(opts);
    BatteryResult r = run_battery(rt);
    EXPECT_TRUE(r.all_passed()) << r.summary();
  }
}

}  // namespace
}  // namespace ompmca::validation
