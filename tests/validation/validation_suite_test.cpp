// OpenMP runtime validation suite — the role of Wang et al.'s OpenMP 3.1
// validation testsuite in the paper (§6A): directive-by-directive semantic
// checks that catch runtime regressions.  Each check is expressed as a
// reusable predicate so the fault-injection tests (seeded_bug_test.cpp) can
// run the same battery against broken backends and assert it FAILS.
#include "validation_common.hpp"

#include <gtest/gtest.h>

namespace ompmca::validation {

namespace {

class ValidationSuite : public ::testing::TestWithParam<gomp::BackendKind> {
 protected:
  gomp::Runtime make_runtime(unsigned threads = 6) {
    gomp::RuntimeOptions opts;
    opts.backend = GetParam();
    gomp::Icvs icvs;
    icvs.num_threads = threads;
    opts.icvs = icvs;
    return gomp::Runtime(opts);
  }
};

TEST_P(ValidationSuite, OmpParallel) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_parallel(rt));
}

TEST_P(ValidationSuite, OmpFor) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_for(rt));
}

TEST_P(ValidationSuite, OmpForFirstLastPrivateAnalogue) {
  // The library API has no privatization clauses; locals per thread play
  // that role.  Verify a lastprivate-style pattern: the thread executing
  // the final iteration publishes its value.
  gomp::Runtime rt = make_runtime();
  long last_value = -1;
  const long n = 1000;
  rt.parallel([&](gomp::ParallelContext& ctx) {
    long my_last = -1;
    ctx.for_loop(0, n, [&](long lo, long hi) {
      for (long i = lo; i < hi; ++i) my_last = i * 2;
      if (hi == n) last_value = my_last;  // owner of the last chunk
    });
  });
  EXPECT_EQ(last_value, (n - 1) * 2);
}

TEST_P(ValidationSuite, OmpBarrier) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_barrier(rt));
}

TEST_P(ValidationSuite, OmpSingle) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_single(rt));
}

TEST_P(ValidationSuite, OmpMaster) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_master(rt));
}

TEST_P(ValidationSuite, OmpCritical) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_critical(rt));
}

TEST_P(ValidationSuite, OmpReduction) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_reduction(rt));
}

TEST_P(ValidationSuite, OmpSections) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_sections(rt));
}

TEST_P(ValidationSuite, OmpOrdered) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_ordered(rt));
}

TEST_P(ValidationSuite, OmpTasks) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_tasks(rt));
}

TEST_P(ValidationSuite, OmpLock) {
  gomp::Runtime rt = make_runtime();
  EXPECT_TRUE(check_lock(rt));
}

TEST_P(ValidationSuite, FullBattery) {
  gomp::Runtime rt = make_runtime();
  BatteryResult r = run_battery(rt);
  EXPECT_TRUE(r.all_passed()) << r.summary();
}

INSTANTIATE_TEST_SUITE_P(
    BothBackends, ValidationSuite,
    ::testing::Values(gomp::BackendKind::kNative, gomp::BackendKind::kMca),
    [](const ::testing::TestParamInfo<gomp::BackendKind>& param_info) {
      return std::string(to_string(param_info.param));
    });

}  // namespace
}  // namespace ompmca::validation
